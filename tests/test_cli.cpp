// CLI front end: argument handling, command dispatch, error paths. Model
// commands use tiny configs via the fast "range/features/formats" paths
// plus one real accuracy invocation against a cached model.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/cli.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::core {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, EmptyArgsPrintUsage) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = run({"explode"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, MalformedOptionsFail) {
  EXPECT_EQ(run({"range", "--format"}).code, 2);     // missing value
  EXPECT_EQ(run({"range", "stray"}).code, 2);        // positional arg
  EXPECT_EQ(run({"range", "-f", "fp16"}).code, 2);   // single dash
}

TEST(Cli, RangeCommandPrintsTableOneRow) {
  const auto r = run({"range", "--format", "fp_e4m3"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("abs max: 240"), std::string::npos);
  EXPECT_NE(r.out.find("dB"), std::string::npos);
}

TEST(Cli, RangeRejectsBadFormat) {
  const auto r = run({"range", "--format", "garbage"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad or missing"), std::string::npos);
}

TEST(Cli, FeaturesListsTableTwo) {
  const auto r = run({"features"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Block Floating Point"), std::string::npos);
  EXPECT_NE(r.out.find("[x]"), std::string::npos);
}

TEST(Cli, FormatsPrintsGrammarAndAliases) {
  const auto r = run({"formats"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("posit_<N>_<ES>"), std::string::npos);
  EXPECT_NE(r.out.find("bfloat16"), std::string::npos);
}

TEST(Cli, AccuracyRejectsMissingFormat) {
  const auto r = run({"accuracy", "--model", "mlp"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, CampaignValidatesSiteAndErrorModel) {
  EXPECT_EQ(run({"campaign", "--format", "int8", "--site", "nowhere"}).code,
            2);
  EXPECT_EQ(run({"campaign", "--format", "int8", "--error-model", "zap"})
                .code,
            2);
  EXPECT_EQ(run({"campaign", "--format", "bogus"}).code, 2);
}

TEST(Cli, DseRejectsUnknownFamily) {
  const auto r = run({"dse", "--family", "unum", "--model", "mlp",
                      "--epochs", "1", "--cache", "/tmp/ge_cli_cache",
                      "--samples", "16"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown family"), std::string::npos);
}

TEST(Cli, AccuracyEndToEnd) {
  // trains a 1-epoch mlp into a private cache; asserts sane output shape
  const auto r = run({"accuracy", "--model", "mlp", "--format", "int8",
                      "--epochs", "1", "--cache", "/tmp/ge_cli_cache",
                      "--samples", "32"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("baseline:"), std::string::npos);
  EXPECT_NE(r.out.find("accuracy:"), std::string::npos);
}

TEST(Cli, CampaignEndToEnd) {
  const auto r = run({"campaign", "--model", "mlp", "--format",
                      "bfp_e5m5_b16", "--site", "metadata", "--injections",
                      "2", "--epochs", "1", "--cache", "/tmp/ge_cli_cache",
                      "--samples", "8"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("network mean dLoss"), std::string::npos);
}

TEST(Cli, CampaignStuckAtErrorModelEndToEnd) {
  const auto r = run({"campaign", "--model", "mlp", "--format", "int8",
                      "--error-model", "sa1", "--injections", "2",
                      "--epochs", "1", "--cache", "/tmp/ge_cli_cache",
                      "--samples", "8"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("error-model=sa1"), std::string::npos);
}

TEST(Cli, CampaignPrefixCacheFlagValidatedAndDigestInvariant) {
  // bad values are usage errors
  const auto bad = run({"campaign", "--model", "mlp", "--format", "int8",
                        "--prefix-cache", "maybe", "--epochs", "1",
                        "--cache", "/tmp/ge_cli_cache", "--samples", "8"});
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("--prefix-cache"), std::string::npos);
  EXPECT_EQ(run({"campaign", "--model", "mlp", "--format", "int8",
                 "--sites-per-trial", "0", "--epochs", "1", "--cache",
                 "/tmp/ge_cli_cache", "--samples", "8"})
                .code,
            2);

  // cache on (default) and off print the same campaign digest
  const std::vector<std::string> base = {
      "campaign", "--model", "mlp", "--format", "int8", "--injections", "3",
      "--epochs", "1", "--cache", "/tmp/ge_cli_cache", "--samples", "8"};
  auto digest = [](const std::string& out) {
    const auto pos = out.find("campaign digest:");
    EXPECT_NE(pos, std::string::npos) << out;
    return out.substr(pos, out.find('\n', pos) - pos);
  };
  const auto on = run(base);
  auto off_args = base;
  off_args.insert(off_args.end(), {"--prefix-cache", "off"});
  const auto off = run(off_args);
  EXPECT_EQ(on.code, 0) << on.err;
  EXPECT_EQ(off.code, 0) << off.err;
  EXPECT_EQ(digest(on.out), digest(off.out));

  // multi-point trials run end to end and shift the digest
  auto multi_args = base;
  multi_args.insert(multi_args.end(), {"--sites-per-trial", "2"});
  const auto multi = run(multi_args);
  EXPECT_EQ(multi.code, 0) << multi.err;
  EXPECT_NE(digest(multi.out), digest(on.out));
}

TEST(Cli, BadNumericOptionIsUsageErrorNotCrash) {
  // used to throw std::invalid_argument straight out of std::stoll
  const auto r = run({"campaign", "--format", "int8", "--samples", "abc"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--samples"), std::string::npos);
  EXPECT_NE(r.err.find("abc"), std::string::npos);

  // trailing junk must not silently truncate either
  EXPECT_EQ(run({"campaign", "--format", "int8", "--injections", "12x"}).code,
            2);
  EXPECT_EQ(run({"dse", "--threshold", "lots"}).code, 2);
}

TEST(Cli, UnknownOptionRejected) {
  const auto r = run({"range", "--format", "fp16", "--frobnicate", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--frobnicate"), std::string::npos);
}

TEST(Cli, BadLogLevelIsUsageError) {
  const auto r = run({"formats", "--log-level", "loud"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--log-level"), std::string::npos);
}

TEST(Cli, UsageListsEveryCommandAndTelemetryFlags) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  for (const char* token : {"accuracy", "campaign", "dse", "range",
                            "features", "formats", "--trace", "--report",
                            "--log-level", "--seed", "--threshold"}) {
    EXPECT_NE(r.err.find(token), std::string::npos) << token;
  }
}

TEST(Cli, ReportAndTraceFilesWritten) {
  const std::string report = "/tmp/ge_cli_report.jsonl";
  const std::string trace = "/tmp/ge_cli_trace.json";
  std::remove(report.c_str());
  std::remove(trace.c_str());
  const auto r = run({"campaign", "--model", "mlp", "--format", "int8",
                      "--injections", "2", "--epochs", "1", "--cache",
                      "/tmp/ge_cli_cache", "--samples", "8", "--report",
                      report, "--trace", trace});
  ASSERT_EQ(r.code, 0) << r.err;

  std::ifstream rf(report);
  ASSERT_TRUE(rf.good());
  std::string all((std::istreambuf_iterator<char>(rf)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"type\":\"run_header\""), std::string::npos);
  EXPECT_NE(all.find("\"type\":\"campaign_layer\""), std::string::npos);
  EXPECT_NE(all.find("\"type\":\"campaign_summary\""), std::string::npos);
  EXPECT_NE(all.find("\"type\":\"metrics\""), std::string::npos);
  EXPECT_NE(all.find("\"schema\":2"), std::string::npos);
  // schema-v2 per-trial stream + heartbeat + histogram summaries
  EXPECT_NE(all.find("\"type\":\"trial\""), std::string::npos);
  EXPECT_NE(all.find("\"type\":\"heartbeat\""), std::string::npos);
  EXPECT_NE(all.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(all.find("campaign.trial_delta_loss"), std::string::npos);

  std::ifstream tf(trace);
  ASSERT_TRUE(tf.good());
  std::string tj((std::istreambuf_iterator<char>(tf)),
                 std::istreambuf_iterator<char>());
  EXPECT_NE(tj.find("\"traceEvents\""), std::string::npos);
  // spans from at least three subsystems
  EXPECT_NE(tj.find("\"cat\":\"campaign\""), std::string::npos);
  EXPECT_NE(tj.find("\"cat\":\"emulator\""), std::string::npos);
  EXPECT_NE(tj.find("\"cat\":\"pool\""), std::string::npos);
  std::remove(report.c_str());
  std::remove(trace.c_str());
}

TEST(Cli, ThreadsFlagAcceptedOnAnyCommand) {
  const auto r = run({"range", "--format", "fp16", "--threads", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("abs max"), std::string::npos);
}

TEST(Cli, ThreadsFlagRestoredAfterRun) {
  const int before = parallel::num_threads();
  EXPECT_EQ(run({"range", "--format", "fp16", "--threads", "3"}).code, 0);
  EXPECT_EQ(parallel::num_threads(), before);
}

TEST(Cli, ThreadsFlagRejectsBadValues) {
  for (const char* bad : {"0", "-2", "257", "abc", "2x", ""}) {
    const auto r = run({"range", "--format", "fp16", "--threads", bad});
    EXPECT_EQ(r.code, 2) << "--threads " << bad;
    EXPECT_NE(r.err.find("--threads"), std::string::npos) << bad;
  }
}

TEST(Cli, UsageListsThreadsFlag) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--threads"), std::string::npos);
}

TEST(Cli, ReportPathUnwritableIsUsageError) {
  const auto r = run({"formats", "--report", "/nonexistent-dir/x.jsonl"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--report"), std::string::npos);
}

// --- ge::io persistence commands -------------------------------------------

std::string grab_line(const std::string& text, const std::string& prefix) {
  const size_t at = text.find(prefix);
  if (at == std::string::npos) return "";
  const size_t end = text.find('\n', at);
  return text.substr(at, end - at);
}

TEST(Cli, TrainSaveLoadEvaluatesBitwiseIdentically) {
  const std::string path = "/tmp/ge_cli_model.gec";
  std::remove(path.c_str());
  const auto saved = run({"train", "--model", "mlp", "--epochs", "1",
                          "--cache", "/tmp/ge_cli_cache", "--samples", "32",
                          "--save", path});
  ASSERT_EQ(saved.code, 0) << saved.err;
  const std::string want = grab_line(saved.out, "eval digest:");
  ASSERT_FALSE(want.empty()) << saved.out;

  const auto loaded = run({"train", "--load", path, "--samples", "32"});
  ASSERT_EQ(loaded.code, 0) << loaded.err;
  EXPECT_EQ(grab_line(loaded.out, "eval digest:"), want);
  EXPECT_NE(loaded.out.find("loaded:"), std::string::npos);

  // --model disagreeing with the checkpoint's architecture is diagnosed
  const auto graft = run({"train", "--load", path, "--model", "simple_cnn"});
  EXPECT_EQ(graft.code, 2);
  std::remove(path.c_str());
}

TEST(Cli, TrainLoadMissingFileExitsTwo) {
  const auto r = run({"train", "--load", "/tmp/ge_cli_no_such.gec"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, CampaignShardsMergeToSingleProcessDigest) {
  const std::vector<std::string> base = {
      "campaign",  "--model",  "mlp",          "--format", "int8",
      "--epochs",  "1",        "--cache",      "/tmp/ge_cli_cache",
      "--samples", "8",        "--injections", "4",
      "--seed",    "5"};
  auto single = base;
  const auto want = run(single);
  ASSERT_EQ(want.code, 0) << want.err;
  const std::string digest = grab_line(want.out, "campaign digest:");
  ASSERT_FALSE(digest.empty()) << want.out;

  std::vector<std::string> shard_files;
  for (int i = 0; i < 3; ++i) {
    const std::string file = "/tmp/ge_cli_shard" + std::to_string(i) + ".gec";
    std::remove(file.c_str());
    auto shard = base;
    shard.insert(shard.end(), {"--shards", "3", "--shard-index",
                               std::to_string(i), "--checkpoint", file});
    const auto r = run(shard);
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("campaign progress:"), std::string::npos);
    shard_files.push_back(file);
  }
  const auto merged = run({"merge", "--inputs",
                           shard_files[0] + "," + shard_files[1] + "," +
                               shard_files[2]});
  ASSERT_EQ(merged.code, 0) << merged.err;
  EXPECT_EQ(grab_line(merged.out, "campaign digest:"), digest);

  // A missing shard is a diagnosed failure, not silent wrong statistics.
  const auto partial =
      run({"merge", "--inputs", shard_files[0] + "," + shard_files[1]});
  EXPECT_EQ(partial.code, 2);
  EXPECT_NE(partial.err.find("incomplete"), std::string::npos);
  for (const auto& f : shard_files) std::remove(f.c_str());
}

TEST(Cli, CampaignAbortThenResumeReproducesDigest) {
  const std::string ck = "/tmp/ge_cli_resume.gec";
  std::remove(ck.c_str());
  const std::vector<std::string> base = {
      "campaign",  "--model",  "mlp",          "--format", "int8",
      "--epochs",  "1",        "--cache",      "/tmp/ge_cli_cache",
      "--samples", "8",        "--injections", "4",
      "--seed",    "5"};
  const auto want = run(base);
  ASSERT_EQ(want.code, 0) << want.err;
  const std::string digest = grab_line(want.out, "campaign digest:");

  auto aborted = base;
  aborted.insert(aborted.end(), {"--checkpoint", ck, "--checkpoint-every",
                                 "2", "--abort-after", "5"});
  const auto a = run(aborted);
  ASSERT_EQ(a.code, 0) << a.err;
  EXPECT_NE(a.out.find("campaign progress:"), std::string::npos);

  auto resumed = base;
  resumed.insert(resumed.end(), {"--checkpoint", ck, "--resume", ck});
  const auto r = run(resumed);
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(grab_line(r.out, "campaign digest:"), digest);
  std::remove(ck.c_str());
}

TEST(Cli, CampaignPersistenceFlagHardening) {
  const std::vector<std::string> base = {"campaign", "--format", "int8"};
  auto with = [&](std::vector<std::string> extra) {
    auto args = base;
    args.insert(args.end(), extra.begin(), extra.end());
    return run(args);
  };
  // Each of these must be exit 2 with the offending flag named, and must
  // fail fast — before any model training starts.
  {
    const auto r = with({"--checkpoint-every", "0", "--checkpoint", "/tmp/x.gec"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--checkpoint-every"), std::string::npos);
  }
  {
    const auto r = with({"--checkpoint-every", "2"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--checkpoint"), std::string::npos);
  }
  {
    const auto r = with({"--shards", "3", "--shard-index", "3",
                         "--checkpoint", "/tmp/x.gec"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--shard-index"), std::string::npos);
  }
  {
    const auto r = with({"--shards", "0", "--checkpoint", "/tmp/x.gec"});
    EXPECT_EQ(r.code, 2);
  }
  {
    const auto r = with({"--shards", "2", "--shard-index", "1"});
    EXPECT_EQ(r.code, 2);  // sharding without a checkpoint file
    EXPECT_NE(r.err.find("--checkpoint"), std::string::npos);
  }
  {
    const auto r = with({"--abort-after", "3"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--abort-after"), std::string::npos);
  }
}

TEST(Cli, CampaignResumeMissingOrCorruptFileExitsTwo) {
  const std::vector<std::string> base = {
      "campaign",  "--model", "mlp",     "--format",          "int8",
      "--epochs",  "1",       "--cache", "/tmp/ge_cli_cache", "--samples",
      "8",         "--injections", "2"};
  auto with = [&](std::vector<std::string> extra) {
    auto args = base;
    args.insert(args.end(), extra.begin(), extra.end());
    return run(args);
  };
  {
    const auto r = with({"--resume", "/tmp/ge_cli_no_such.gec"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("cannot open"), std::string::npos);
  }
  {
    // A .gec with a flipped payload byte: CRC rejects it, exit 2.
    const std::string bad = "/tmp/ge_cli_corrupt.gec";
    {
      const auto ok = with({"--checkpoint", bad, "--abort-after", "2",
                            "--checkpoint-every", "1"});
      ASSERT_EQ(ok.code, 0) << ok.err;
      std::fstream f(bad, std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(f.good());
      f.seekp(-2, std::ios::end);
      f.put('\x5A');
    }
    const auto r = with({"--resume", bad});
    EXPECT_EQ(r.code, 2);
    std::remove(bad.c_str());
  }
}

TEST(Cli, MergeUsageErrors) {
  EXPECT_EQ(run({"merge"}).code, 2);                      // no --inputs
  EXPECT_EQ(run({"merge", "--inputs", ","}).code, 2);     // empty list
  EXPECT_EQ(run({"merge", "--inputs", "/tmp/ge_cli_no_such.gec"}).code, 2);
}

TEST(Cli, UsageListsPersistenceCommandsAndFlags) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  for (const char* token :
       {"train", "merge", "--save", "--load", "--checkpoint",
        "--checkpoint-every", "--resume", "--shards", "--shard-index",
        "--inputs", "--output"}) {
    EXPECT_NE(r.err.find(token), std::string::npos) << token;
  }
}

// --- campaign analytics: report subcommand, append mode, /metrics ----------

TEST(Cli, ReportOverShardsByteIdenticalToSingleProcess) {
  // The acceptance bar for the trial event stream: `goldeneye report` over
  // three per-shard JSONL files renders byte-for-byte the same tables as
  // over the single-process run's report.
  const std::vector<std::string> base = {
      "campaign",  "--model",  "mlp",          "--format", "int8",
      "--epochs",  "1",        "--cache",      "/tmp/ge_cli_cache",
      "--samples", "8",        "--injections", "4",
      "--seed",    "5"};
  const std::string single = "/tmp/ge_cli_report_single.jsonl";
  std::remove(single.c_str());
  {
    auto args = base;
    args.insert(args.end(), {"--report", single});
    ASSERT_EQ(run(args).code, 0);
  }
  std::vector<std::string> shards;
  for (int i = 0; i < 3; ++i) {
    const std::string jsonl =
        "/tmp/ge_cli_report_shard" + std::to_string(i) + ".jsonl";
    const std::string ck =
        "/tmp/ge_cli_report_shard" + std::to_string(i) + ".gec";
    std::remove(jsonl.c_str());
    std::remove(ck.c_str());
    auto args = base;
    args.insert(args.end(), {"--shards", "3", "--shard-index",
                             std::to_string(i), "--checkpoint", ck,
                             "--report", jsonl});
    ASSERT_EQ(run(args).code, 0);
    shards.push_back(jsonl);
    std::remove(ck.c_str());
  }

  const auto want = run({"report", "--inputs", single});
  ASSERT_EQ(want.code, 0) << want.err;
  EXPECT_NE(want.out.find("layer vulnerability"), std::string::npos);
  EXPECT_NE(want.out.find("SDC heatmap"), std::string::npos);
  const auto got = run({"report", "--inputs",
                        shards[0] + "," + shards[1] + "," + shards[2]});
  ASSERT_EQ(got.code, 0) << got.err;
  EXPECT_EQ(got.out, want.out);  // byte-identical, not just equivalent

  std::remove(single.c_str());
  for (const auto& f : shards) std::remove(f.c_str());
}

TEST(Cli, ReportAppendsOnResumeInsteadOfClobbering) {
  // --resume with the same --report path must append, so the merged file
  // carries both runs' headers (the second marked resumed) and the full
  // trial stream that `report` needs.
  const std::string ck = "/tmp/ge_cli_append.gec";
  const std::string jsonl = "/tmp/ge_cli_append.jsonl";
  std::remove(ck.c_str());
  std::remove(jsonl.c_str());
  const std::vector<std::string> base = {
      "campaign",  "--model",  "mlp",          "--format", "int8",
      "--epochs",  "1",        "--cache",      "/tmp/ge_cli_cache",
      "--samples", "8",        "--injections", "4",
      "--seed",    "5",        "--report",     jsonl};
  {
    auto args = base;
    args.insert(args.end(), {"--checkpoint", ck, "--checkpoint-every", "2",
                             "--abort-after", "5"});
    ASSERT_EQ(run(args).code, 0);
  }
  {
    auto args = base;
    args.insert(args.end(), {"--checkpoint", ck, "--resume", ck});
    ASSERT_EQ(run(args).code, 0);
  }
  std::ifstream f(jsonl);
  ASSERT_TRUE(f.good());
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  size_t headers = 0;
  for (size_t at = all.find("\"type\":\"run_header\"");
       at != std::string::npos;
       at = all.find("\"type\":\"run_header\"", at + 1)) {
    ++headers;
  }
  EXPECT_EQ(headers, 2u);  // both runs present: the resume appended
  EXPECT_NE(all.find("\"resumed\":true"), std::string::npos);

  const auto rep = run({"report", "--inputs", jsonl});
  EXPECT_EQ(rep.code, 0) << rep.err;
  EXPECT_NE(rep.out.find("layer vulnerability"), std::string::npos);
  std::remove(ck.c_str());
  std::remove(jsonl.c_str());
}

TEST(Cli, ReportUsageAndInputErrors) {
  EXPECT_EQ(run({"report"}).code, 2);                 // no --inputs
  EXPECT_EQ(run({"report", "--inputs", ","}).code, 2);
  EXPECT_EQ(run({"report", "--inputs", "/tmp/ge_cli_no_such.jsonl"}).code, 2);
  // A readable file with no trial records is a legitimate empty campaign:
  // exit 0 with an explicit note, so scripted pipelines don't fail on
  // configurations that select no fault sites.
  const std::string empty = "/tmp/ge_cli_report_empty.jsonl";
  {
    std::ofstream f(empty);
    f << "{\"schema\":2,\"type\":\"run_header\"}\n";
  }
  const auto r = run({"report", "--inputs", empty});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("no trial records"), std::string::npos);
  // A zero-byte file behaves the same (zero lines, zero trials).
  {
    std::ofstream f(empty, std::ios::trunc);
  }
  const auto z = run({"report", "--inputs", empty});
  EXPECT_EQ(z.code, 0) << z.err;
  EXPECT_NE(z.out.find("no trial records"), std::string::npos);
  std::remove(empty.c_str());
}

TEST(Cli, MetricsPortValidatedAndServes) {
  for (const char* bad : {"-2", "65536", "abc", "8x", ""}) {
    const auto r = run({"formats", "--metrics-port", bad});
    EXPECT_EQ(r.code, 2) << "--metrics-port " << bad;
    EXPECT_NE(r.err.find("--metrics-port"), std::string::npos) << bad;
  }
  // Port 0 binds an ephemeral port and announces it on stderr.
  const auto r = run({"formats", "--metrics-port", "0"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("http://127.0.0.1:"), std::string::npos);
  EXPECT_NE(r.err.find("/metrics"), std::string::npos);
}

TEST(Cli, UsageListsReportCommandAndMetricsPort) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("report"), std::string::npos);
  EXPECT_NE(r.err.find("--metrics-port"), std::string::npos);
}

TEST(Cli, ProfileEndToEndAttributesWallTime) {
  const auto r = run({"profile", "--model", "mlp", "--format", "int8",
                      "--iterations", "2", "--samples", "8", "--epochs", "1",
                      "--cache", "/tmp/ge_cli_cache"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("span attribution"), std::string::npos);
  EXPECT_NE(r.out.find("hardware counters"), std::string::npos);
  EXPECT_NE(r.out.find("memory watermarks"), std::string::npos);
  // the acceptance bar: root spans account for >= 95% of the wall time
  const size_t at = r.out.find("% of wall)");
  ASSERT_NE(at, std::string::npos) << r.out;
  const size_t open = r.out.rfind('(', at);
  ASSERT_NE(open, std::string::npos);
  const double pct = std::strtod(r.out.c_str() + open + 1, nullptr);
  EXPECT_GE(pct, 95.0) << r.out;
  // the table carries the root span and per-layer emulator rows keyed
  // by the profiled format
  EXPECT_NE(r.out.find("forward"), std::string::npos);
  EXPECT_NE(r.out.find("int8"), std::string::npos);
}

TEST(Cli, ProfileFlameExportWritesCollapsedStacks) {
  const std::string flame = "/tmp/ge_cli_profile.flame";
  std::remove(flame.c_str());
  const auto r = run({"profile", "--model", "mlp", "--format", "native",
                      "--iterations", "1", "--samples", "8", "--epochs", "1",
                      "--cache", "/tmp/ge_cli_cache", "--flame", flame});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("flamegraph stacks"), std::string::npos);
  std::ifstream f(flame);
  ASSERT_TRUE(f.good());
  std::string stacks((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
  EXPECT_FALSE(stacks.empty());
  EXPECT_NE(stacks.find("forward"), std::string::npos) << stacks;
  std::remove(flame.c_str());
}

TEST(Cli, ProfileValidatesOptions) {
  EXPECT_EQ(run({"profile", "--format", "garbage"}).code, 2);
  EXPECT_EQ(run({"profile", "--iterations", "0"}).code, 2);
  EXPECT_EQ(run({"profile", "--iterations", "abc"}).code, 2);
  const auto r = run({"profile", "--perf", "sometimes"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--perf"), std::string::npos);
}

TEST(Cli, UsageListsProfileCommand) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("profile"), std::string::npos);
  EXPECT_NE(r.err.find("--flame"), std::string::npos);
}

TEST(Cli, ReportStreamCarriesSpanStatsAndMemoryHeartbeat) {
  // --report runs enable profiling, so the closing metrics snapshot must
  // include span_stat rows, and heartbeats carry the memory watermarks.
  const std::string report = "/tmp/ge_cli_report_spans.jsonl";
  std::remove(report.c_str());
  const auto r = run({"campaign", "--model", "mlp", "--format", "int8",
                      "--injections", "2", "--epochs", "1", "--cache",
                      "/tmp/ge_cli_cache", "--samples", "8", "--report",
                      report});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream rf(report);
  ASSERT_TRUE(rf.good());
  std::string all((std::istreambuf_iterator<char>(rf)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"type\":\"span_stat\""), std::string::npos);
  EXPECT_NE(all.find("\"span\":\"trial\""), std::string::npos);
  EXPECT_NE(all.find("\"self_ns\":"), std::string::npos);
  EXPECT_NE(all.find("\"type\":\"heartbeat\""), std::string::npos);
  EXPECT_NE(all.find("\"rss_bytes\":"), std::string::npos);
  EXPECT_NE(all.find("\"arena_bytes\":"), std::string::npos);
  std::remove(report.c_str());
}

// --- service commands (serve / submit / worker) ----------------------------
// The loopback protocol itself is exercised in tests/test_net.cpp; here we
// pin the CLI contract: table-driven usage, validated numeric args, exit 2
// on misuse, exit 2 on an unreachable server.

TEST(Cli, UsageListsServiceCommands) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("serve"), std::string::npos);
  EXPECT_NE(r.err.find("submit"), std::string::npos);
  EXPECT_NE(r.err.find("worker"), std::string::npos);
  EXPECT_NE(r.err.find("--drain-timeout"), std::string::npos);
  EXPECT_NE(r.err.find("--drop-leases"), std::string::npos);
}

TEST(Cli, ServeValidatesNumericOptions) {
  EXPECT_EQ(run({"serve", "--port", "65536"}).code, 2);
  EXPECT_EQ(run({"serve", "--port", "-1"}).code, 2);
  EXPECT_EQ(run({"serve", "--port", "abc"}).code, 2);
  EXPECT_EQ(run({"serve", "--lease-timeout", "0"}).code, 2);
  EXPECT_EQ(run({"serve", "--drain-timeout", "-5"}).code, 2);
  EXPECT_EQ(run({"serve", "--chunk", "-1"}).code, 2);
  EXPECT_EQ(run({"serve", "--max-campaigns", "-1"}).code, 2);
  EXPECT_EQ(run({"serve", "--bogus", "1"}).code, 2);
}

TEST(Cli, SubmitRequiresValidPortAndSpec) {
  // Clients must name their server: no --port is misuse, not a default.
  const auto missing = run({"submit", "--format", "int8"});
  EXPECT_EQ(missing.code, 2);
  EXPECT_NE(missing.err.find("--port"), std::string::npos);
  EXPECT_EQ(run({"submit", "--port", "0", "--format", "int8"}).code, 2);
  EXPECT_EQ(run({"submit", "--port", "19", "--format", "bogus"}).code, 2);
  EXPECT_EQ(run({"submit", "--port", "19", "--format", "int8", "--site",
                 "nowhere"})
                .code,
            2);
}

TEST(Cli, WorkerValidatesNumericOptions) {
  EXPECT_EQ(run({"worker"}).code, 2);  // missing --port
  EXPECT_EQ(run({"worker", "--port", "19", "--max-leases", "-1"}).code, 2);
  EXPECT_EQ(run({"worker", "--port", "19", "--poll", "0"}).code, 2);
  EXPECT_EQ(run({"worker", "--port", "19", "--drop-leases", "-2"}).code, 2);
}

TEST(Cli, SubmitAgainstDeadServerExitsTwo) {
  // Port 1 on loopback: connection refused -> NetError -> exit 2, the
  // same class as a missing .gec file (diagnosed environment error).
  const auto r = run({"submit", "--port", "1", "--format", "int8"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("submit:"), std::string::npos);
}

}  // namespace
}  // namespace ge::core
