// Cross-format properties: invariants every number system in the registry
// must satisfy, swept over a representative spec list. New formats added
// to the registry get this safety net for free — add the spec here.
#include <gtest/gtest.h>

#include <cmath>

#include "formats/format_registry.hpp"
#include "tensor/rng.hpp"

namespace ge::fmt {
namespace {

class EveryFormat : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<NumberFormat> fmt_ = make_format(GetParam());
};

TEST_P(EveryFormat, SpecStringRoundTripsThroughRegistry) {
  auto reparsed = make_format(fmt_->spec());
  EXPECT_EQ(reparsed->spec(), fmt_->spec());
  EXPECT_EQ(reparsed->bit_width(), fmt_->bit_width());
}

TEST_P(EveryFormat, CloneMatchesOriginal) {
  auto c = fmt_->clone();
  EXPECT_EQ(c->spec(), fmt_->spec());
  EXPECT_EQ(c->bit_width(), fmt_->bit_width());
  EXPECT_EQ(c->has_metadata(), fmt_->has_metadata());
}

TEST_P(EveryFormat, ZeroQuantisesToZero) {
  Tensor z({4});
  Tensor q = fmt_->real_to_format_tensor(z);
  for (float v : q.flat()) EXPECT_EQ(v, 0.0f);
}

TEST_P(EveryFormat, RangeIsSane) {
  EXPECT_GT(fmt_->abs_max(), 0.0);
  EXPECT_GT(fmt_->abs_min(), 0.0);
  EXPECT_GE(fmt_->abs_max(), fmt_->abs_min());
  EXPECT_GE(fmt_->dynamic_range_db(), 0.0);
}

TEST_P(EveryFormat, TensorQuantisationIsIdempotent) {
  Rng rng(17);
  Tensor t = rng.normal_tensor({128}, 0.0f, 3.0f);
  Tensor q1 = fmt_->real_to_format_tensor(t);
  // fresh instance: metadata recaptured from the already-quantised tensor
  auto f2 = make_format(GetParam());
  Tensor q2 = f2->real_to_format_tensor(q1);
  EXPECT_TRUE(q2.allclose(q1, 1e-6f)) << fmt_->spec();
}

TEST_P(EveryFormat, QuantisationPreservesSigns) {
  Rng rng(18);
  Tensor t = rng.normal_tensor({128}, 0.0f, 2.0f);
  Tensor q = fmt_->real_to_format_tensor(t);
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (q[i] != 0.0f) {
      EXPECT_EQ(std::signbit(q[i]), std::signbit(t[i])) << fmt_->spec();
    }
  }
}

TEST_P(EveryFormat, ScalarBitWidthMatchesDeclaration) {
  Rng rng(19);
  (void)fmt_->real_to_format_tensor(rng.normal_tensor({16}));
  const BitString b = fmt_->real_to_format_at(1.0f, 0);
  EXPECT_EQ(b.width(), fmt_->bit_width());
}

TEST_P(EveryFormat, ScalarDecodeInvertsEncodeOnQuantisedValues) {
  Rng rng(20);
  Tensor t = rng.normal_tensor({64}, 0.0f, 2.0f);
  Tensor q = fmt_->real_to_format_tensor(t);
  for (int64_t i = 0; i < q.numel(); ++i) {
    const BitString b = fmt_->real_to_format_at(q[i], i);
    EXPECT_EQ(fmt_->format_to_real_at(b, i), q[i])
        << fmt_->spec() << " element " << i;
  }
}

TEST_P(EveryFormat, BitFlipResolvesToFixedPointAfterOneReencode) {
  // decode(flip(encode(q))) may land on a pattern outside the encoder's
  // output set (INT's -2^(N-1), AFP's reserved top exponent code), but one
  // re-encode must resolve it: r = decode(encode(faulty)) is a fixed
  // point. Faulty values remain values the hardware can settle on.
  Rng rng(21);
  Tensor t = rng.normal_tensor({32}, 0.0f, 2.0f);
  Tensor q = fmt_->real_to_format_tensor(t);
  for (int64_t i = 0; i < q.numel(); ++i) {
    for (int bit = 0; bit < fmt_->bit_width(); ++bit) {
      BitString b = fmt_->real_to_format_at(q[i], i);
      b.flip_bit(bit);
      const float faulty = fmt_->format_to_real_at(b, i);
      if (!std::isfinite(faulty)) continue;  // Inf/NaN codes are their own
      const float r =
          fmt_->format_to_real_at(fmt_->real_to_format_at(faulty, i), i);
      const float r2 =
          fmt_->format_to_real_at(fmt_->real_to_format_at(r, i), i);
      EXPECT_EQ(r2, r) << fmt_->spec() << " elem " << i << " bit " << bit;
    }
  }
}

TEST_P(EveryFormat, MetadataRegistersReadableWhenPresent) {
  if (!fmt_->has_metadata()) GTEST_SKIP();
  Rng rng(22);
  (void)fmt_->real_to_format_tensor(rng.normal_tensor({64}));
  const auto fields = fmt_->metadata_fields();
  ASSERT_FALSE(fields.empty());
  for (const auto& field : fields) {
    ASSERT_GT(field.count, 0);
    const BitString reg = fmt_->read_metadata(field.name, 0);
    EXPECT_EQ(reg.width(), field.bit_width);
    // write-back of the same content is a no-op on the decoded tensor
    Tensor before = fmt_->decode_last_tensor();
    fmt_->write_metadata(field.name, 0, reg);
    Tensor after = fmt_->decode_last_tensor();
    EXPECT_TRUE(after.equals(before));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryFormat,
    ::testing::Values("fp_e8m23", "fp_e5m10", "fp_e8m7", "fp_e8m10",
                      "fp_e6m9", "fp_e4m3", "fp_e5m2", "fp_e2m5",
                      "fp_e4m3_nodn", "fp_e4m3_sat", "fxp_1_15_16",
                      "fxp_1_3_12", "fxp_1_4_4", "int16", "int8", "int4",
                      "bfp_e8m7_b16", "bfp_e5m5_b16", "bfp_e5m5_btensor",
                      "afp_e4m3", "afp_e5m2", "afp_e4m3_dn", "posit_8_0",
                      "posit_8_1", "posit_16_1"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

}  // namespace
}  // namespace ge::fmt
