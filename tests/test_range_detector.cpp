// RangeDetector: profiling, clamping, event counting.
#include <gtest/gtest.h>

#include "core/range_detector.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge::core {
namespace {

TEST(RangeDetector, ProfilesPerLayerRanges) {
  Rng rng(1);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(4, 4, rng);
  RangeDetector det(seq, {"Linear"});
  det.profile(rng.normal_tensor({8, 4}));
  ASSERT_EQ(det.ranges().size(), 1u);
  const auto& [lo, hi] = det.ranges().begin()->second;
  EXPECT_LT(lo, hi);
}

TEST(RangeDetector, ClampsOutOfRangeActivations) {
  Rng rng(2);
  nn::Sequential seq;
  auto& lin = seq.emplace<nn::Linear>(2, 2, rng);
  lin.weight().value = Tensor({2, 2}, {1, 0, 0, 1});  // identity
  lin.bias()->value.fill(0.0f);
  RangeDetector det(seq, {"Linear"});
  det.profile(Tensor({1, 2}, {-1.0f, 1.0f}));  // range [-1, 1]
  det.enable();
  EXPECT_TRUE(det.enabled());
  Tensor y = seq(Tensor({1, 2}, {100.0f, -100.0f}));
  EXPECT_EQ(y[0], 1.0f);
  EXPECT_EQ(y[1], -1.0f);
  EXPECT_EQ(det.clamp_events(), 2);
  det.reset_clamp_events();
  EXPECT_EQ(det.clamp_events(), 0);
}

TEST(RangeDetector, DisableStopsClamping) {
  Rng rng(3);
  nn::Sequential seq;
  auto& lin = seq.emplace<nn::Linear>(2, 2, rng);
  lin.weight().value = Tensor({2, 2}, {1, 0, 0, 1});
  lin.bias()->value.fill(0.0f);
  RangeDetector det(seq, {"Linear"});
  det.profile(Tensor({1, 2}, {-1.0f, 1.0f}));
  det.enable();
  det.disable();
  Tensor y = seq(Tensor({1, 2}, {100.0f, -100.0f}));
  EXPECT_EQ(y[0], 100.0f);
  EXPECT_EQ(det.clamp_events(), 0);
}

TEST(RangeDetector, InRangeValuesUntouched) {
  data::SyntheticVisionConfig cfg;
  cfg.train_count = 8;
  cfg.test_count = 32;
  data::SyntheticVision data(cfg);
  auto model = models::make_model("simple_cnn", cfg, 4);
  model->eval();
  const auto batch = data::take(data.test(), 0, 16);
  const Tensor native = (*model)(batch.images);
  RangeDetector det(*model);
  det.profile(batch.images);
  det.enable();
  const Tensor guarded = (*model)(batch.images);
  // profiling on the same data: nothing can be out of range
  EXPECT_TRUE(guarded.equals(native));
  EXPECT_EQ(det.clamp_events(), 0);
}

TEST(RangeDetector, EnableIsIdempotent) {
  Rng rng(5);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(2, 2, rng);
  RangeDetector det(seq, {"Linear"});
  det.profile(rng.normal_tensor({4, 2}));
  det.enable();
  det.enable();  // second enable must not double the hooks
  int64_t hooks = 0;
  for (auto& [p, m] : seq.named_modules()) hooks += m->hook_count();
  EXPECT_EQ(hooks, 1);
}

TEST(RangeDetector, DestructorRemovesHooks) {
  Rng rng(6);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(2, 2, rng);
  {
    RangeDetector det(seq, {"Linear"});
    det.profile(rng.normal_tensor({4, 2}));
    det.enable();
  }
  for (auto& [p, m] : seq.named_modules()) EXPECT_EQ(m->hook_count(), 0);
}

}  // namespace
}  // namespace ge::core
