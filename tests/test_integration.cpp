// End-to-end integration: train a model, emulate every format family on
// it, run value + metadata campaigns, verify the qualitative relationships
// the paper reports, and confirm the system never corrupts persistent
// state across a full experiment sequence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/goldeneye.hpp"
#include "core/range_detector.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"
#include "nn/loss.hpp"

namespace ge::core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticVisionConfig cfg;
    cfg.train_count = 1024;
    cfg.test_count = 256;
    data_ = new data::SyntheticVision(cfg);
    models::TrainConfig tc;
    tc.epochs = 5;
    trained_ = new models::TrainedModel(
        models::ensure_trained("simple_cnn", *data_, "/tmp/ge_it_cache", tc));
  }
  static void TearDownTestSuite() {
    delete trained_;
    delete data_;
  }

  static data::SyntheticVision* data_;
  static models::TrainedModel* trained_;
};

data::SyntheticVision* IntegrationTest::data_ = nullptr;
models::TrainedModel* IntegrationTest::trained_ = nullptr;

TEST_F(IntegrationTest, ModelLearnedTheTask) {
  EXPECT_GT(trained_->test_accuracy, 0.75f);
}

TEST_F(IntegrationTest, WideFormatsPreserveAccuracy) {
  GoldenEye ge(*trained_->model, *data_);
  const float base = ge.baseline_accuracy(128);
  for (const char* spec : {"fp_e5m10", "fp_e8m7", "bfp_e8m15_b16",
                           "fxp_1_7_8", "int8", "afp_e5m10"}) {
    const float acc = ge.format_accuracy(spec, 128);
    EXPECT_GE(acc, base - 0.03f) << spec;
  }
}

TEST_F(IntegrationTest, AggressiveFormatsDegradeAccuracy) {
  GoldenEye ge(*trained_->model, *data_);
  const float base = ge.baseline_accuracy(128);
  // 2-3 bit configurations must visibly hurt a CNN
  const float acc_int2 = ge.format_accuracy("int2", 128);
  EXPECT_LT(acc_int2, base);
}

TEST_F(IntegrationTest, AfpBeatsPlainFpAtSameWidthWhenRangeIsOff) {
  // ResNet-style finding from Fig. 4: AFP's movable range rescues
  // low-bitwidth configs that plain FP (fixed bias) cannot represent.
  GoldenEye ge(*trained_->model, *data_);
  const float fp = ge.format_accuracy("fp_e2m5", 128);
  const float afp = ge.format_accuracy("afp_e2m5", 128);
  EXPECT_GE(afp, fp - 1e-6f);
}

TEST_F(IntegrationTest, ValueCampaignAcrossAllEightInjectionTypes) {
  // The paper's 8 single-bit injection data types: value flips for all 5
  // formats + metadata flips for INT, BFP, AFP.
  GoldenEye ge(*trained_->model, *data_);
  const char* value_formats[] = {"fp_e5m10", "fxp_1_7_8", "int8",
                                 "bfp_e5m5_b16", "afp_e5m2"};
  for (const char* spec : value_formats) {
    CampaignConfig cfg;
    cfg.format_spec = spec;
    cfg.injections_per_layer = 3;
    const auto r = ge.campaign(cfg, 8);
    EXPECT_EQ(r.layers.size(), 4u) << spec;
  }
  const char* meta_formats[] = {"int8", "bfp_e5m5_b16", "afp_e5m2"};
  for (const char* spec : meta_formats) {
    CampaignConfig cfg;
    cfg.format_spec = spec;
    cfg.site = InjectionSite::kMetadata;
    cfg.injections_per_layer = 3;
    const auto r = ge.campaign(cfg, 8);
    EXPECT_EQ(r.layers.size(), 4u) << spec;
  }
}

TEST_F(IntegrationTest, BfpMetadataWorseThanAfpMetadata) {
  // Fig. 7 relationship: a BFP shared-exponent fault is a stored multi-bit
  // corruption of a whole block, while an AFP bias fault misaligns a
  // bounded range — BFP metadata campaigns must come out markedly worse,
  // and both must dwarf their own value campaigns.
  GoldenEye ge(*trained_->model, *data_);
  CampaignConfig bfp_meta;
  bfp_meta.format_spec = "bfp_e5m5_b16";
  bfp_meta.site = InjectionSite::kMetadata;
  bfp_meta.injections_per_layer = 25;
  bfp_meta.seed = 3;
  CampaignConfig afp_meta = bfp_meta;
  afp_meta.format_spec = "afp_e5m2";
  CampaignConfig bfp_value = bfp_meta;
  bfp_value.site = InjectionSite::kActivationValue;

  const auto rb = ge.campaign(bfp_meta, 16);
  const auto ra = ge.campaign(afp_meta, 16);
  const auto rv = ge.campaign(bfp_value, 16);
  EXPECT_GT(rb.network_mean_delta_loss(), ra.network_mean_delta_loss());
  EXPECT_GT(rb.network_mean_delta_loss(),
            10.0 * rv.network_mean_delta_loss());
}

TEST_F(IntegrationTest, RangeDetectorSuppressesFaultImpact) {
  nn::Module& model = *trained_->model;
  const auto batch = data::take(data_->test(), 0, 16);
  RangeDetector det(model);
  det.profile(batch.images);

  EmulatorConfig ecfg;
  ecfg.format_spec = "fp_e5m10";
  Emulator emu(model, ecfg);
  const GoldenRun golden = run_golden(model, batch);

  // Find a weight fault that *amplifies* (exponent-MSB flips on values
  // below 1.0 scale them up by thousands; flips on values >= 1.0 can land
  // on the Inf/NaN codes instead, which downstream ops may mask).
  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.site = InjectionSite::kWeightValue;
  spec.bit = 14;
  bool found = false;
  for (int64_t e = 0; e < 64 && !found; ++e) {
    spec.element = e;
    inj.arm(spec);
    const auto& rec = *inj.last_record();
    if (std::isfinite(rec.value_after) &&
        std::fabs(rec.value_after) > 100.0f * std::fabs(rec.value_before) &&
        rec.value_before != 0.0f) {
      found = true;  // keep it armed
    }
  }
  ASSERT_TRUE(found);

  const Tensor faulty_unprotected = model(batch.images);
  const float dl_unprotected =
      compare_to_golden(golden, faulty_unprotected, batch.labels).delta_loss;
  det.enable();
  const Tensor faulty_protected = model(batch.images);
  const float dl_protected =
      compare_to_golden(golden, faulty_protected, batch.labels).delta_loss;
  det.disable();
  inj.disarm();

  EXPECT_GT(dl_unprotected, 0.0f);
  EXPECT_LT(dl_protected, dl_unprotected);
  EXPECT_GT(det.clamp_events(), 0);
}

TEST_F(IntegrationTest, TrainingUnderEmulationImprovesLoss) {
  // §V-B: emulation supports training (straight-through estimator).
  data::SyntheticVisionConfig cfg;
  cfg.train_count = 256;
  cfg.test_count = 64;
  data::SyntheticVision small(cfg);
  auto model = models::make_model("mlp", cfg, 11);
  EmulatorConfig ecfg;
  ecfg.format_spec = "fp_e5m10";
  ecfg.quantize_weights = false;  // weights keep FP32 master copies
  Emulator emu(*model, ecfg);
  models::TrainConfig tc;
  tc.epochs = 6;
  const auto r = models::train_model(*model, small, tc);
  EXPECT_GT(r.test_accuracy, 0.3f);  // far above the 10% chance floor
}

TEST_F(IntegrationTest, ExperimentSequenceLeavesModelPristine) {
  nn::Module& model = *trained_->model;
  std::vector<Tensor> originals;
  for (auto* p : model.parameters()) originals.push_back(p->value);

  GoldenEye ge(model, *data_);
  (void)ge.format_accuracy("int4", 32);
  CampaignConfig cc;
  cc.format_spec = "bfp_e5m5_b16";
  cc.injections_per_layer = 2;
  (void)ge.campaign(cc, 8);
  cc.site = InjectionSite::kMetadata;
  (void)ge.campaign(cc, 8);
  DseConfig dc;
  dc.family = "fp";
  (void)ge.dse(dc, 32);

  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_TRUE(model.parameters()[i]->value.equals(originals[i]));
  }
  for (auto& [p, m] : model.named_modules()) EXPECT_EQ(m->hook_count(), 0);
}

}  // namespace
}  // namespace ge::core
