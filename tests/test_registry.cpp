// Format registry: the spec-string surface of the tool.
#include <gtest/gtest.h>

#include <cmath>

#include "formats/afp.hpp"
#include "formats/bfp.hpp"
#include "formats/format_registry.hpp"
#include "formats/fp.hpp"
#include "formats/fxp.hpp"
#include "formats/intq.hpp"

namespace ge::fmt {
namespace {

TEST(Registry, ParsesFp) {
  auto f = make_format("fp_e4m3");
  EXPECT_EQ(f->bit_width(), 8);
  EXPECT_EQ(f->spec(), "fp_e4m3");
  EXPECT_NE(dynamic_cast<FloatFormat*>(f.get()), nullptr);
}

TEST(Registry, ParsesFpOptions) {
  auto nodn = make_format("fp_e5m10_nodn");
  EXPECT_EQ(nodn->spec(), "fp_e5m10_nodn");
  auto sat = make_format("fp_e4m3_sat");
  EXPECT_EQ(sat->spec(), "fp_e4m3_sat");
  auto both = make_format("fp_e4m3_nodn_sat");
  EXPECT_EQ(both->spec(), "fp_e4m3_nodn_sat");
}

TEST(Registry, ParsesFxp) {
  auto f = make_format("fxp_1_3_12");
  EXPECT_EQ(f->bit_width(), 16);
  EXPECT_NE(dynamic_cast<FxpFormat*>(f.get()), nullptr);
}

TEST(Registry, ParsesInt) {
  auto f = make_format("int8");
  EXPECT_EQ(f->bit_width(), 8);
  EXPECT_NE(dynamic_cast<IntFormat*>(f.get()), nullptr);
}

TEST(Registry, ParsesBfp) {
  auto f = make_format("bfp_e5m5_b16");
  auto* bfp = dynamic_cast<BfpFormat*>(f.get());
  ASSERT_NE(bfp, nullptr);
  EXPECT_EQ(bfp->exp_bits(), 5);
  EXPECT_EQ(bfp->man_bits(), 5);
  EXPECT_EQ(bfp->block_size(), 16);
  auto whole = make_format("bfp_e8m7_btensor");
  EXPECT_EQ(dynamic_cast<BfpFormat*>(whole.get())->block_size(), 0);
}

TEST(Registry, ParsesAfp) {
  auto f = make_format("afp_e4m3");
  EXPECT_NE(dynamic_cast<AfpFormat*>(f.get()), nullptr);
  auto dn = make_format("afp_e4m3_dn");
  EXPECT_EQ(dn->spec(), "afp_e4m3_dn");
}

struct AliasCase {
  const char* alias;
  const char* resolved;
};

class RegistryAlias : public ::testing::TestWithParam<AliasCase> {};

TEST_P(RegistryAlias, ResolvesToCanonicalSpec) {
  auto f = make_format(GetParam().alias);
  EXPECT_EQ(f->spec(), GetParam().resolved);
}

INSTANTIATE_TEST_SUITE_P(
    Aliases, RegistryAlias,
    ::testing::Values(AliasCase{"fp32", "fp_e8m23"},
                      AliasCase{"fp16", "fp_e5m10"},
                      AliasCase{"half", "fp_e5m10"},
                      AliasCase{"bfloat16", "fp_e8m7"},
                      AliasCase{"bfloat", "fp_e8m7"},
                      AliasCase{"tf32", "fp_e8m10"},
                      AliasCase{"dlfloat", "fp_e6m9"},
                      AliasCase{"fp8_e4m3", "fp_e4m3"},
                      AliasCase{"fp8_e5m2", "fp_e5m2"}),
    [](const auto& info) { return std::string(info.param.alias); });

class RegistryReject : public ::testing::TestWithParam<const char*> {};

TEST_P(RegistryReject, ThrowsOnMalformedSpec) {
  EXPECT_THROW(make_format(GetParam()), std::invalid_argument);
  EXPECT_FALSE(is_valid_spec(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, RegistryReject,
    ::testing::Values("", "fp", "fp_e4", "fp_e4m", "fp_e4m3_bogus", "fpe4m3",
                      "fxp_1_3", "fxp_2_3_4", "intx", "int", "bfp_e5m5",
                      "bfp_e5m5_b", "afp_e4", "float32", "fp_e4m3x",
                      "int8 ", "fp_e99m3", "int99", "bfp_e5m99_b16"));

TEST(Registry, IsValidSpecAcceptsGoodSpecs) {
  for (const char* s :
       {"fp_e8m23", "fp16", "fxp_1_15_16", "int8", "bfp_e5m5_b16",
        "afp_e4m3", "bfp_e8m7_btensor"}) {
    EXPECT_TRUE(is_valid_spec(s)) << s;
  }
}

TEST(Registry, KnownAliasesAllParse) {
  for (const auto& a : known_aliases()) {
    EXPECT_NO_THROW(make_format(a)) << a;
  }
}

TEST(Registry, RepeatedMakeFormatReturnsFreshState) {
  // make_format caches a parsed prototype per spec and clones it; the
  // clone must carry no tensor state from earlier uses of the same spec.
  auto first = make_format("int8");
  Tensor t({4});
  for (int64_t i = 0; i < 4; ++i) t[i] = float(i + 1);
  (void)first->real_to_format_tensor(t);
  EXPECT_NO_THROW(first->decode_last_tensor());
  auto second = make_format("int8");
  EXPECT_THROW(second->decode_last_tensor(), std::logic_error);
}

TEST(Registry, DequantCodebookMatchesScalarDecode) {
  const std::vector<float>* cb = dequant_codebook("fp_e4m3");
  ASSERT_NE(cb, nullptr);
  ASSERT_EQ(cb->size(), size_t(1) << 8);
  auto f = make_format("fp_e4m3");
  for (uint64_t p = 0; p < cb->size(); ++p) {
    const float expect = f->format_to_real(BitString(p, 8));
    const float got = (*cb)[static_cast<size_t>(p)];
    if (std::isnan(expect)) {
      EXPECT_TRUE(std::isnan(got)) << "pattern " << p;
    } else {
      EXPECT_EQ(expect, got) << "pattern " << p;
    }
  }
  // Same spec returns the same cached table.
  EXPECT_EQ(dequant_codebook("fp_e4m3"), cb);
}

TEST(Registry, DequantCodebookCoversPositToo) {
  const std::vector<float>* cb = dequant_codebook("posit_8_1");
  ASSERT_NE(cb, nullptr);
  EXPECT_EQ(cb->size(), size_t(1) << 8);
}

TEST(Registry, DequantCodebookNullForMetadataOrWideFormats) {
  EXPECT_EQ(dequant_codebook("int8"), nullptr);       // per-tensor scale
  EXPECT_EQ(dequant_codebook("bfp_e5m5_b16"), nullptr);
  EXPECT_EQ(dequant_codebook("afp_e4m3"), nullptr);   // per-tensor bias
  EXPECT_EQ(dequant_codebook("fp_e8m23"), nullptr);   // 32 bits: too wide
  EXPECT_THROW(dequant_codebook("not_a_spec"), std::invalid_argument);
}

}  // namespace
}  // namespace ge::fmt
