// Layer forward semantics: shapes, known values, mode behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/norm.hpp"
#include "nn/optim.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/transformer.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge::nn {
namespace {

TEST(Linear, ComputesAffineMap) {
  Rng rng(1);
  Linear lin(2, 2, rng);
  lin.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  lin.bias()->value = Tensor({2}, {10, 20});
  Tensor y = lin(Tensor({1, 2}, {1, 1}));
  EXPECT_NEAR(y[0], 1 + 2 + 10, 1e-5f);
  EXPECT_NEAR(y[1], 3 + 4 + 20, 1e-5f);
}

TEST(Linear, HandlesRank3Inputs) {
  Rng rng(2);
  Linear lin(4, 6, rng);
  Tensor y = lin(Tensor({2, 3, 4}));
  EXPECT_EQ(y.shape(), (Shape{2, 3, 6}));
}

TEST(Linear, NoBiasVariant) {
  Rng rng(3);
  Linear lin(3, 2, rng, /*with_bias=*/false);
  EXPECT_EQ(lin.bias(), nullptr);
  EXPECT_EQ(lin.local_parameters().size(), 1u);
  Tensor y = lin(Tensor({1, 3}));  // zero in, zero out without bias
  for (float v : y.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Linear, RejectsWrongLastDim) {
  Rng rng(4);
  Linear lin(3, 2, rng);
  EXPECT_THROW(lin(Tensor({1, 4})), std::invalid_argument);
}

TEST(Conv2d, MatchesHandComputedValue) {
  Rng rng(5);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.weight().value.fill(1.0f);  // 3x3 sum filter
  conv.bias()->value.fill(0.5f);
  Tensor x = Tensor::ones({1, 1, 3, 3});
  Tensor y = conv(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3, 3}));
  EXPECT_NEAR(y.at({0, 0, 1, 1}), 9.0f + 0.5f, 1e-5f);  // full window
  EXPECT_NEAR(y.at({0, 0, 0, 0}), 4.0f + 0.5f, 1e-5f);  // corner
}

TEST(Conv2d, StrideAndChannels) {
  Rng rng(6);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  Tensor y = conv(Tensor({2, 3, 16, 16}));
  EXPECT_EQ(y.shape(), (Shape{2, 8, 8, 8}));
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Rng rng(7);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  EXPECT_THROW(conv(Tensor({1, 2, 8, 8})), std::invalid_argument);
  EXPECT_THROW(conv(Tensor({3, 8, 8})), std::invalid_argument);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor y = relu(Tensor({4}, {-1, 0, 2, -3}));
  EXPECT_TRUE(y.equals(Tensor({4}, {0, 0, 2, 0})));
}

TEST(GELU, KnownValues) {
  GELU gelu;
  Tensor y = gelu(Tensor({3}, {0.0f, 100.0f, -100.0f}));
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  EXPECT_NEAR(y[1], 100.0f, 1e-3f);   // ≈ identity for large x
  EXPECT_NEAR(y[2], 0.0f, 1e-3f);     // ≈ 0 for very negative x
}

TEST(Sigmoid, KnownValues) {
  Sigmoid s;
  Tensor y = s(Tensor({3}, {0.0f, 100.0f, -100.0f}));
  EXPECT_NEAR(y[0], 0.5f, 1e-6f);
  EXPECT_NEAR(y[1], 1.0f, 1e-6f);
  EXPECT_NEAR(y[2], 0.0f, 1e-6f);
}

TEST(Tanh, KnownValues) {
  Tanh t;
  Tensor y = t(Tensor({2}, {0.0f, 1.0f}));
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  EXPECT_NEAR(y[1], std::tanh(1.0f), 1e-6f);
}

TEST(Dropout, EvalIsIdentity) {
  Dropout d(0.5f);
  d.eval();
  Rng rng(30);
  Tensor x = rng.normal_tensor({64});
  EXPECT_TRUE(d(x).equals(x));
}

TEST(Dropout, TrainingDropsAndRescales) {
  Dropout d(0.5f, 99);
  d.train(true);
  Tensor x = Tensor::ones({10000});
  Tensor y = d(x);
  int64_t zeros = 0;
  for (float v : y.flat()) {
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6f);
    if (v == 0.0f) ++zeros;
  }
  // ~50% dropped; mean preserved by the 1/(1-p) rescale
  EXPECT_NEAR(double(zeros) / 10000.0, 0.5, 0.05);
  EXPECT_NEAR(ops::mean(y), 1.0f, 0.05f);
}

TEST(Dropout, RejectsBadProbability) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_NO_THROW(Dropout(0.0f));
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout d(0.5f, 7);
  d.train(true);
  Tensor x = Tensor::ones({256});
  Tensor y = d(x);
  Tensor g = d.backward(Tensor::ones({256}));
  for (int64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(g[i] == 0.0f, y[i] == 0.0f) << i;  // identical survivors
  }
}

TEST(Flatten, CollapsesTrailingDims) {
  Flatten fl;
  Tensor y = fl(Tensor({2, 3, 4, 5}));
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(2);
  bn.eval();
  // default running stats: mean 0, var 1 -> identity (gamma=1, beta=0)
  Rng rng(8);
  Tensor x = rng.normal_tensor({2, 2, 3, 3});
  Tensor y = bn(x);
  EXPECT_TRUE(y.allclose(x, 1e-4f));
}

TEST(BatchNorm, TrainingNormalisesBatch) {
  BatchNorm2d bn(1);
  bn.train(true);
  Rng rng(9);
  Tensor x = rng.normal_tensor({4, 1, 8, 8}, 5.0f, 3.0f);
  Tensor y = bn(x);
  EXPECT_NEAR(ops::mean(y), 0.0f, 1e-4f);
  double var = 0.0;
  for (float v : y.flat()) var += double(v) * v;
  var /= y.numel();
  EXPECT_NEAR(var, 1.0, 1e-2);
}

TEST(BatchNorm, RunningStatsConvergeTowardBatchStats) {
  BatchNorm2d bn(1);
  bn.train(true);
  Rng rng(10);
  Tensor x = rng.normal_tensor({8, 1, 8, 8}, 2.0f, 1.0f);
  for (int i = 0; i < 50; ++i) (void)bn(x);
  bn.eval();
  Tensor y = bn(x);
  // after convergence, eval output ≈ training output (batch ≈ running)
  EXPECT_NEAR(ops::mean(y), 0.0f, 0.05f);
}

TEST(LayerNorm, NormalisesEachRow) {
  LayerNorm ln(8);
  Rng rng(11);
  Tensor x = rng.normal_tensor({4, 8}, 3.0f, 2.0f);
  Tensor y = ln(x);
  for (int64_t r = 0; r < 4; ++r) {
    double m = 0.0;
    for (int64_t c = 0; c < 8; ++c) m += y[r * 8 + c];
    EXPECT_NEAR(m / 8.0, 0.0, 1e-4);
  }
}

TEST(MaxPool, ForwardShape) {
  MaxPool2d mp(2, 2);
  EXPECT_EQ(mp(Tensor({1, 3, 8, 8})).shape(), (Shape{1, 3, 4, 4}));
}

TEST(Attention, OutputShapeMatchesInput) {
  Rng rng(12);
  MultiheadSelfAttention attn(16, 4, rng);
  Tensor y = attn(Tensor({2, 5, 16}));
  EXPECT_EQ(y.shape(), (Shape{2, 5, 16}));
}

TEST(Attention, RejectsIndivisibleHeads) {
  Rng rng(13);
  EXPECT_THROW(MultiheadSelfAttention(10, 3, rng), std::invalid_argument);
}

TEST(Attention, HooksFireOnInternalProjections) {
  Rng rng(14);
  MultiheadSelfAttention attn(8, 2, rng);
  int fired = 0;
  for (auto& [p, m] : attn.named_modules()) {
    if (m->kind() == "Linear") {
      m->add_forward_hook([&fired](Module&, Tensor&) { ++fired; });
    }
  }
  (void)attn(Tensor({1, 3, 8}));
  EXPECT_EQ(fired, 2);  // qkv + proj
}

TEST(TransformerBlock, ShapePreservedAndResidualActive) {
  Rng rng(15);
  TransformerBlock block(16, 4, 32, rng);
  Rng xr(16);
  Tensor x = xr.normal_tensor({2, 5, 16});
  Tensor y = block(x);
  EXPECT_EQ(y.shape(), x.shape());
  // residual path: output correlates with input (not independent noise)
  double dot = 0.0, nx = 0.0, ny = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    dot += double(x[i]) * y[i];
    nx += double(x[i]) * x[i];
    ny += double(y[i]) * y[i];
  }
  EXPECT_GT(dot / std::sqrt(nx * ny), 0.25);
}

TEST(PatchEmbed, TokenisesImage) {
  Rng rng(17);
  PatchEmbed pe(3, 32, 4, rng);
  Tensor y = pe(Tensor({2, 3, 16, 16}));
  EXPECT_EQ(y.shape(), (Shape{2, 16, 32}));
}

TEST(ClassTokenPosEmbed, PrependsToken) {
  Rng rng(18);
  ClassTokenPosEmbed em(4, 8, rng);
  Tensor y = em(Tensor({2, 4, 8}));
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8}));
  EXPECT_THROW(em(Tensor({2, 3, 8})), std::invalid_argument);
}

TEST(TakeClassToken, SelectsFirstToken) {
  TakeClassToken t;
  Tensor x({1, 2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = t(x);
  EXPECT_TRUE(y.equals(Tensor({1, 3}, {1, 2, 3})));
}

TEST(Loss, CrossEntropyKnownValue) {
  // uniform logits over 4 classes: loss = log(4)
  Tensor logits({1, 4});
  EXPECT_NEAR(CrossEntropyLoss::evaluate(logits, {2}), std::log(4.0f), 1e-5f);
}

TEST(Loss, PerfectPredictionNearZero) {
  Tensor logits({1, 3}, {100.0f, 0.0f, 0.0f});
  EXPECT_NEAR(CrossEntropyLoss::evaluate(logits, {0}), 0.0f, 1e-4f);
}

TEST(Loss, ChecksTargets) {
  Tensor logits({2, 3});
  EXPECT_THROW(CrossEntropyLoss::evaluate(logits, {0}),
               std::invalid_argument);
  EXPECT_THROW(CrossEntropyLoss::evaluate(logits, {0, 3}),
               std::invalid_argument);
  EXPECT_THROW(CrossEntropyLoss::evaluate(Tensor({4}), {0}),
               std::invalid_argument);
}

TEST(Loss, AccuracyCounts) {
  Tensor logits({2, 2}, {1.0f, 0.0f, 0.0f, 1.0f});  // preds: 0, 1
  EXPECT_EQ(accuracy(logits, {0, 1}), 1.0f);
  EXPECT_EQ(accuracy(logits, {1, 1}), 0.5f);
}

TEST(Optim, SgdMovesAgainstGradient) {
  Rng rng(19);
  Linear lin(2, 2, rng);
  const float w0 = lin.weight().value[0];
  lin.weight().grad.fill(1.0f);
  SGD opt(lin.parameters(), 0.1f, 0.0f);
  opt.step();
  EXPECT_NEAR(lin.weight().value[0], w0 - 0.1f, 1e-6f);
}

TEST(Optim, AdamReducesQuadraticLoss) {
  // minimise ||Wx - t||^2 through our backward machinery
  Rng rng(20);
  Linear lin(4, 4, rng);
  lin.train(true);
  Adam opt(lin.parameters(), 1e-2f);
  Rng xr(21);
  Tensor x = xr.normal_tensor({8, 4});
  Tensor target = xr.normal_tensor({8, 4});
  float first_loss = -1.0f, last_loss = -1.0f;
  for (int it = 0; it < 600; ++it) {
    opt.zero_grad();
    Tensor y = lin(x);
    Tensor diff = ops::sub(y, target);
    float loss = 0.0f;
    for (float v : diff.flat()) loss += v * v;
    if (it == 0) first_loss = loss;
    last_loss = loss;
    (void)lin.backward(ops::mul_scalar(diff, 2.0f));
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.2f);
}

TEST(Sequential, ChainsModules) {
  Rng rng(22);
  Sequential seq;
  seq.emplace<Linear>(4, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 2, rng);
  EXPECT_EQ(seq.size(), 3);
  EXPECT_EQ(seq(Tensor({5, 4})).shape(), (Shape{5, 2}));
}

}  // namespace
}  // namespace ge::nn
