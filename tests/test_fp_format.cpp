// FloatFormat conformance: golden IEEE-754 values (binary16 / bfloat16 /
// e4m3), Table-I dynamic ranges, and property sweeps across the (e, m,
// denormals) grid — the paper's §III-C validation suite.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "formats/fp.hpp"
#include "tensor/rng.hpp"

namespace ge::fmt {
namespace {

TEST(FloatFormat, RejectsBadParameters) {
  EXPECT_THROW(FloatFormat(1, 10), std::invalid_argument);
  EXPECT_THROW(FloatFormat(12, 10), std::invalid_argument);
  EXPECT_THROW(FloatFormat(5, 0), std::invalid_argument);
  EXPECT_THROW(FloatFormat(5, 53), std::invalid_argument);
}

TEST(FloatFormat, Fp32QuantizeIsIdentity) {
  FloatFormat fp32(8, 23);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const float x = rng.normal(0.0f, 100.0f);
    EXPECT_EQ(fp32.quantize_value(x), x);
  }
  // including denormals
  EXPECT_EQ(fp32.quantize_value(1e-44f), 1e-44f);
}

TEST(FloatFormat, Fp16GoldenValues) {
  FloatFormat fp16(5, 10);
  EXPECT_EQ(fp16.quantize_value(1.0f), 1.0f);
  EXPECT_EQ(fp16.quantize_value(65504.0f), 65504.0f);
  // max + ulp/2 overflows to inf (round-to-nearest would exceed max)
  EXPECT_TRUE(std::isinf(fp16.quantize_value(65536.0f)));
  // 65505 rounds back down to 65504
  EXPECT_EQ(fp16.quantize_value(65505.0f), 65504.0f);
  // min normal and min denormal
  EXPECT_EQ(fp16.quantize_value(6.103515625e-5f), 6.103515625e-5f);
  EXPECT_EQ(fp16.quantize_value(5.960464477539063e-8f),
            5.960464477539063e-8f);
  // half of min denormal flushes to zero (ties-to-even)
  EXPECT_EQ(fp16.quantize_value(2.98023223876953125e-8f), 0.0f);
}

TEST(FloatFormat, Fp16RoundToNearestEven) {
  FloatFormat fp16(5, 10);
  const float ulp = std::ldexp(1.0f, -10);  // ulp at 1.0
  EXPECT_EQ(fp16.quantize_value(1.0f + ulp / 2), 1.0f);        // tie -> even
  EXPECT_EQ(fp16.quantize_value(1.0f + 3 * ulp / 2), 1.0f + 2 * ulp);
  EXPECT_EQ(fp16.quantize_value(1.0f + 0.6f * ulp), 1.0f + ulp);
}

TEST(FloatFormat, Fp16EncodingGoldenBitPatterns) {
  FloatFormat fp16(5, 10);
  EXPECT_EQ(fp16.real_to_format(1.0f).value(), 0x3C00u);
  EXPECT_EQ(fp16.real_to_format(-2.0f).value(), 0xC000u);
  EXPECT_EQ(fp16.real_to_format(65504.0f).value(), 0x7BFFu);
  EXPECT_EQ(fp16.real_to_format(0.0f).value(), 0x0000u);
  EXPECT_EQ(
      fp16.real_to_format(std::numeric_limits<float>::infinity()).value(),
      0x7C00u);
  EXPECT_EQ(fp16.real_to_format(0.5f).value(), 0x3800u);
  // smallest denormal
  EXPECT_EQ(fp16.real_to_format(5.960464477539063e-8f).value(), 0x0001u);
}

TEST(FloatFormat, Fp16DecodingGoldenBitPatterns) {
  FloatFormat fp16(5, 10);
  EXPECT_EQ(fp16.format_to_real(BitString(0x3C00, 16)), 1.0f);
  EXPECT_EQ(fp16.format_to_real(BitString(0xC000, 16)), -2.0f);
  EXPECT_EQ(fp16.format_to_real(BitString(0x7BFF, 16)), 65504.0f);
  EXPECT_TRUE(std::isinf(fp16.format_to_real(BitString(0x7C00, 16))));
  EXPECT_TRUE(std::isnan(fp16.format_to_real(BitString(0x7C01, 16))));
  EXPECT_EQ(fp16.format_to_real(BitString(0x0001, 16)),
            5.960464477539063e-8f);
}

TEST(FloatFormat, BFloat16Range) {
  FloatFormat bf(8, 7);
  EXPECT_NEAR(bf.abs_max(), 3.3895313892515355e38, 1e33);
  FloatFormat bf_nodn(8, 7, {.denormals = false});
  EXPECT_NEAR(bf_nodn.abs_min(), 1.1754943508222875e-38, 1e-43);
  EXPECT_NEAR(bf.abs_min(), 9.183549615799121e-41, 1e-46);
}

TEST(FloatFormat, E4m3Range) {
  FloatFormat e4m3(4, 3);
  EXPECT_EQ(e4m3.abs_max(), 240.0);
  EXPECT_NEAR(e4m3.abs_min(), 0.001953125, 1e-12);  // 2^-9 denormal
  FloatFormat nodn(4, 3, {.denormals = false});
  EXPECT_NEAR(nodn.abs_min(), 0.015625, 1e-12);  // 2^-6 min normal
}

TEST(FloatFormat, TableOneDbValues) {
  // The paper's Table I, reproduced from our abs_max/abs_min.
  EXPECT_NEAR(FloatFormat(8, 23).dynamic_range_db(), 1667.71, 0.5);
  EXPECT_NEAR(FloatFormat(8, 23, {.denormals = false}).dynamic_range_db(),
              1529.23, 0.5);
  EXPECT_NEAR(FloatFormat(5, 10).dynamic_range_db(), 240.82, 0.5);
  EXPECT_NEAR(FloatFormat(5, 10, {.denormals = false}).dynamic_range_db(),
              180.61, 0.5);
  EXPECT_NEAR(FloatFormat(8, 7).dynamic_range_db(), 1571.54, 0.5);
  EXPECT_NEAR(FloatFormat(8, 7, {.denormals = false}).dynamic_range_db(),
              1529.20, 0.5);
  EXPECT_NEAR(FloatFormat(4, 3).dynamic_range_db(), 101.79, 0.5);
  EXPECT_NEAR(FloatFormat(4, 3, {.denormals = false}).dynamic_range_db(),
              83.73, 0.5);
}

TEST(FloatFormat, NamedFormatGeometry) {
  // the named formats of §II-A map onto the parameterised class
  EXPECT_EQ(FloatFormat(8, 23).bit_width(), 32);  // FP32
  EXPECT_EQ(FloatFormat(5, 10).bit_width(), 16);  // FP16
  EXPECT_EQ(FloatFormat(8, 7).bit_width(), 16);   // bfloat16
  EXPECT_EQ(FloatFormat(8, 10).bit_width(), 19);  // TensorFloat-32
  EXPECT_EQ(FloatFormat(6, 9).bit_width(), 16);   // DLFloat
}

TEST(FloatFormat, Bfloat16TruncatesFp32Mantissa) {
  // bfloat16 shares FP32's exponent: quantisation keeps the top 7
  // mantissa bits (round-to-nearest), so q is within 2^-8 relative.
  FloatFormat bf(8, 7);
  Rng rng(55);
  for (int i = 0; i < 300; ++i) {
    const float x = rng.normal(0.0f, 1e10f);
    const float q = bf.quantize_value(x);
    if (x != 0.0f) {
      EXPECT_LE(std::fabs(q - x) / std::fabs(x), 1.0f / 256.0f + 1e-7f);
    }
  }
}

TEST(FloatFormat, Tf32KeepsFp32RangeWithFp16Precision) {
  FloatFormat tf32(8, 10);
  FloatFormat fp32(8, 23);
  FloatFormat fp16(5, 10);
  // identical exponent range; max differs only by the mantissa tail
  EXPECT_NEAR(tf32.abs_max() / fp32.abs_max(), 1.0, 1e-3);
  // same mantissa as FP16, so the same ulp near 1.0 ...
  EXPECT_EQ(tf32.quantize_value(1.0f + 1e-4f),
            fp16.quantize_value(1.0f + 1e-4f));
  // ... but it survives magnitudes FP16 overflows on
  EXPECT_TRUE(std::isinf(fp16.quantize_value(1e30f)));
  EXPECT_FALSE(std::isinf(tf32.quantize_value(1e30f)));
}

TEST(FloatFormat, NoDenormalsFlushesToZero) {
  FloatFormat f(4, 3, {.denormals = false});
  const float min_normal = 0.015625f;  // 2^-6
  EXPECT_EQ(f.quantize_value(min_normal), min_normal);
  EXPECT_EQ(f.quantize_value(min_normal * 0.6f), min_normal);  // rounds up
  EXPECT_EQ(f.quantize_value(min_normal * 0.4f), 0.0f);        // flushes
}

TEST(FloatFormat, SaturateOverflowClampsInsteadOfInf) {
  FloatFormat f(4, 3, {.denormals = true, .saturate_overflow = true});
  EXPECT_EQ(f.quantize_value(1e6f), 240.0f);
  EXPECT_EQ(f.quantize_value(-1e6f), -240.0f);
  EXPECT_EQ(f.quantize_value(std::numeric_limits<float>::infinity()), 240.0f);
}

TEST(FloatFormat, NanPropagates) {
  FloatFormat f(5, 10);
  EXPECT_TRUE(std::isnan(f.quantize_value(std::nanf(""))));
  const BitString b = f.real_to_format(std::nanf(""));
  EXPECT_TRUE(std::isnan(f.format_to_real(b)));
}

TEST(FloatFormat, SignedZeroKeepsSign) {
  FloatFormat f(5, 10);
  const BitString b = f.real_to_format(-0.0f);
  EXPECT_TRUE(b.bit(15));  // sign bit set
  EXPECT_EQ(f.format_to_real(b), 0.0f);
}

TEST(FloatFormat, TensorAndScalarPathsAgree) {
  FloatFormat f(4, 3);
  Rng rng(2);
  Tensor t = rng.normal_tensor({512}, 0.0f, 50.0f);
  Tensor q = f.real_to_format_tensor(t);
  for (int64_t i = 0; i < t.numel(); ++i) {
    const float scalar = f.format_to_real(f.real_to_format(t[i]));
    EXPECT_EQ(q[i], scalar) << "value " << t[i];
  }
}

TEST(FloatFormat, SpecStringRoundTrips) {
  EXPECT_EQ(FloatFormat(4, 3).spec(), "fp_e4m3");
  EXPECT_EQ(FloatFormat(5, 2, {.denormals = false}).spec(), "fp_e5m2_nodn");
  FloatFormat::Options o;
  o.saturate_overflow = true;
  EXPECT_EQ(FloatFormat(3, 4, o).spec(), "fp_e3m4_sat");
}

TEST(FloatFormat, CloneIsIndependent) {
  FloatFormat f(4, 3);
  auto c = f.clone();
  EXPECT_EQ(c->spec(), f.spec());
  EXPECT_EQ(c->bit_width(), 8);
}

/// ---- property sweeps across the format grid -------------------------------

struct FpParam {
  int e;
  int m;
  bool denormals;
};

class FloatFormatGrid : public ::testing::TestWithParam<FpParam> {};

TEST_P(FloatFormatGrid, QuantizeIsIdempotent) {
  const auto p = GetParam();
  FloatFormat f(p.e, p.m, {.denormals = p.denormals});
  Rng rng(100 + p.e * 10 + p.m);
  for (int i = 0; i < 300; ++i) {
    const float x = rng.normal(0.0f, 10.0f);
    const float q = f.quantize_value(x);
    EXPECT_EQ(f.quantize_value(q), q);
  }
}

TEST_P(FloatFormatGrid, QuantizeIsOddSymmetric) {
  const auto p = GetParam();
  FloatFormat f(p.e, p.m, {.denormals = p.denormals});
  Rng rng(200 + p.e * 10 + p.m);
  for (int i = 0; i < 300; ++i) {
    const float x = rng.normal(0.0f, 10.0f);
    EXPECT_EQ(f.quantize_value(-x), -f.quantize_value(x));
  }
}

TEST_P(FloatFormatGrid, QuantizeIsMonotone) {
  const auto p = GetParam();
  FloatFormat f(p.e, p.m, {.denormals = p.denormals});
  Rng rng(300 + p.e * 10 + p.m);
  std::vector<float> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(0.0f, 5.0f));
  std::sort(xs.begin(), xs.end());
  float prev = f.quantize_value(xs.front());
  for (float x : xs) {
    const float q = f.quantize_value(x);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST_P(FloatFormatGrid, QuantizationErrorBoundedByHalfUlp) {
  const auto p = GetParam();
  FloatFormat f(p.e, p.m, {.denormals = p.denormals});
  Rng rng(400 + p.e * 10 + p.m);
  const float mx = static_cast<float>(f.abs_max());
  const float min_normal = pow2f(1 - f.bias());
  for (int i = 0; i < 300; ++i) {
    // stay inside the normal range so the ulp bound applies
    const float x = rng.uniform(-mx / 2, mx / 2);
    const float q = f.quantize_value(x);
    if (std::fabs(x) >= min_normal) {
      const float ulp = std::ldexp(1.0f, floor_log2(x) - p.m);
      EXPECT_LE(std::fabs(q - x), ulp * 0.5f + 1e-30f)
          << "x=" << x << " q=" << q;
    }
  }
}

TEST_P(FloatFormatGrid, EncodeDecodeRoundTripsQuantizedValues) {
  const auto p = GetParam();
  FloatFormat f(p.e, p.m, {.denormals = p.denormals});
  Rng rng(500 + p.e * 10 + p.m);
  for (int i = 0; i < 300; ++i) {
    const float q = f.quantize_value(rng.normal(0.0f, 20.0f));
    EXPECT_EQ(f.format_to_real(f.real_to_format(q)), q);
  }
}

TEST_P(FloatFormatGrid, MaxAndMinAreRepresentable) {
  const auto p = GetParam();
  FloatFormat f(p.e, p.m, {.denormals = p.denormals});
  const float mx = static_cast<float>(f.abs_max());
  const float mn = static_cast<float>(f.abs_min());
  EXPECT_EQ(f.quantize_value(mx), mx);
  EXPECT_EQ(f.quantize_value(mn), mn);
  EXPECT_EQ(f.quantize_value(-mx), -mx);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FloatFormatGrid,
    ::testing::Values(FpParam{2, 1, true}, FpParam{2, 5, true},
                      FpParam{3, 2, true}, FpParam{4, 3, true},
                      FpParam{4, 3, false}, FpParam{5, 2, true},
                      FpParam{5, 10, true}, FpParam{5, 10, false},
                      FpParam{6, 9, true}, FpParam{8, 7, true},
                      FpParam{8, 7, false}, FpParam{8, 10, true},
                      FpParam{8, 23, true}, FpParam{8, 23, false}),
    [](const ::testing::TestParamInfo<FpParam>& info) {
      return "e" + std::to_string(info.param.e) + "m" +
             std::to_string(info.param.m) +
             (info.param.denormals ? "_dn" : "_nodn");
    });

}  // namespace
}  // namespace ge::fmt
