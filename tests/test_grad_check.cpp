// Numerical gradient verification for every trainable layer and composite
// block: analytic backward() vs central finite differences on a random
// linear functional of the output. This is the test that certifies the
// training support (§V-B: "number format emulation is supported for
// training, as backpropagation is supported").
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "models/tiny_deit.hpp"
#include "models/tiny_resnet.hpp"
#include "nn/activation.hpp"
#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/norm.hpp"
#include "nn/pooling.hpp"
#include "nn/transformer.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge::nn {
namespace {

/// Scalar objective: sum(c ⊙ M(x)) for a fixed random c.
class GradHarness {
 public:
  GradHarness(Module& m, Tensor x, uint64_t seed) : m_(&m), x_(std::move(x)) {
    m_->train(true);
    Tensor probe = m_->forward(x_);  // discover output shape
    Rng rng(seed);
    c_ = rng.normal_tensor(probe.shape());
  }

  double loss_at(const Tensor& x) {
    Tensor y = m_->forward(x);
    double s = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i) s += double(y[i]) * c_[i];
    return s;
  }

  /// Run analytic backward at x_ (fills param grads, returns input grad).
  Tensor analytic_input_grad() {
    m_->zero_grad();
    (void)m_->forward(x_);
    return m_->backward(c_);
  }

  /// Central-difference gradient of one input element.
  double numeric_input_grad(int64_t i, double h) {
    Tensor xp = x_, xm = x_;
    xp[i] += static_cast<float>(h);
    xm[i] -= static_cast<float>(h);
    return (loss_at(xp) - loss_at(xm)) / (2 * h);
  }

  /// Central-difference gradient of one parameter element.
  double numeric_param_grad(Parameter& p, int64_t i, double h) {
    const float saved = p.value[i];
    p.value[i] = saved + static_cast<float>(h);
    const double lp = loss_at(x_);
    p.value[i] = saved - static_cast<float>(h);
    const double lm = loss_at(x_);
    p.value[i] = saved;
    return (lp - lm) / (2 * h);
  }

  Tensor& input() { return x_; }
  Module& module() { return *m_; }

 private:
  Module* m_;
  Tensor x_;
  Tensor c_;
};

void expect_close(double analytic, double numeric, const std::string& what,
                  double rel_tol = 2e-2) {
  const double tol = rel_tol * std::max({1.0, std::fabs(analytic),
                                         std::fabs(numeric)});
  EXPECT_NEAR(analytic, numeric, tol) << what;
}

/// Check input grads (all elements if small, a stride otherwise) and a
/// sample of each parameter's grads.
void check_gradients(Module& m, Tensor x, uint64_t seed, double h = 1e-3,
                     double rel_tol = 2e-2) {
  GradHarness harness(m, std::move(x), seed);
  const Tensor gx = harness.analytic_input_grad();
  const int64_t n = harness.input().numel();
  const int64_t stride = std::max<int64_t>(1, n / 24);
  for (int64_t i = 0; i < n; i += stride) {
    expect_close(gx[i], harness.numeric_input_grad(i, h),
                 "input grad [" + std::to_string(i) + "]", rel_tol);
  }
  for (Parameter* p : m.parameters()) {
    (void)harness.analytic_input_grad();  // refresh grads (zeroed inside)
    const int64_t pn = p->value.numel();
    const int64_t pstride = std::max<int64_t>(1, pn / 12);
    for (int64_t i = 0; i < pn; i += pstride) {
      expect_close(p->grad[i], harness.numeric_param_grad(*p, i, h),
                   p->name + " grad [" + std::to_string(i) + "]", rel_tol);
    }
  }
}

TEST(GradCheck, Linear) {
  Rng rng(100);
  Linear m(5, 4, rng);
  check_gradients(m, rng.normal_tensor({3, 5}), 1);
}

TEST(GradCheck, LinearRank3) {
  Rng rng(101);
  Linear m(4, 6, rng);
  check_gradients(m, rng.normal_tensor({2, 3, 4}), 2);
}

TEST(GradCheck, Conv2d) {
  Rng rng(102);
  Conv2d m(2, 3, 3, 1, 1, rng);
  check_gradients(m, rng.normal_tensor({2, 2, 5, 5}), 3);
}

TEST(GradCheck, Conv2dStrided) {
  Rng rng(103);
  Conv2d m(1, 2, 3, 2, 1, rng);
  check_gradients(m, rng.normal_tensor({1, 1, 7, 7}), 4);
}

TEST(GradCheck, ReLU) {
  Rng rng(104);
  ReLU m;
  // keep inputs away from the kink at 0
  Tensor x = rng.normal_tensor({4, 7});
  for (float& v : x.flat()) {
    if (std::fabs(v) < 0.05f) v = 0.2f;
  }
  check_gradients(m, x, 5);
}

TEST(GradCheck, GELU) {
  Rng rng(105);
  GELU m;
  check_gradients(m, rng.normal_tensor({3, 6}), 6);
}

TEST(GradCheck, Sigmoid) {
  Rng rng(130);
  Sigmoid m;
  check_gradients(m, rng.normal_tensor({4, 6}), 30);
}

TEST(GradCheck, Tanh) {
  Rng rng(131);
  Tanh m;
  check_gradients(m, rng.normal_tensor({4, 6}), 31);
}

TEST(GradCheck, BatchNorm2d) {
  Rng rng(106);
  BatchNorm2d m(3);
  check_gradients(m, rng.normal_tensor({4, 3, 3, 3}), 7);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(107);
  LayerNorm m(6);
  check_gradients(m, rng.normal_tensor({5, 6}), 8);
}

TEST(GradCheck, MaxPool2d) {
  Rng rng(108);
  MaxPool2d m(2, 2);
  // well-separated values so the argmax never switches under +/- h
  Tensor x = rng.normal_tensor({1, 2, 4, 4}, 0.0f, 10.0f);
  check_gradients(m, x, 9);
}

TEST(GradCheck, AvgPool2d) {
  Rng rng(109);
  AvgPool2d m(2, 2);
  check_gradients(m, rng.normal_tensor({2, 2, 4, 4}), 10);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(110);
  GlobalAvgPool m;
  check_gradients(m, rng.normal_tensor({2, 3, 4, 4}), 11);
}

TEST(GradCheck, Attention) {
  Rng rng(111);
  MultiheadSelfAttention m(8, 2, rng);
  check_gradients(m, rng.normal_tensor({2, 4, 8}), 12);
}

TEST(GradCheck, MlpBlock) {
  Rng rng(112);
  MlpBlock m(6, 12, rng);
  check_gradients(m, rng.normal_tensor({2, 3, 6}), 13);
}

TEST(GradCheck, TransformerBlock) {
  Rng rng(113);
  TransformerBlock m(8, 2, 16, rng);
  check_gradients(m, rng.normal_tensor({1, 4, 8}), 14);
}

TEST(GradCheck, PatchEmbed) {
  Rng rng(114);
  PatchEmbed m(2, 6, 2, rng);
  check_gradients(m, rng.normal_tensor({1, 2, 4, 4}), 15);
}

TEST(GradCheck, ClassTokenPosEmbed) {
  Rng rng(115);
  ClassTokenPosEmbed m(4, 6, rng);
  check_gradients(m, rng.normal_tensor({2, 4, 6}), 16);
}

TEST(GradCheck, BasicBlockIdentitySkip) {
  Rng rng(116);
  models::BasicBlock m(4, 4, 1, rng);
  check_gradients(m, rng.normal_tensor({2, 4, 4, 4}), 17);
}

TEST(GradCheck, BasicBlockProjectedSkip) {
  Rng rng(117);
  models::BasicBlock m(2, 4, 2, rng);
  check_gradients(m, rng.normal_tensor({2, 2, 6, 6}), 18);
}

TEST(GradCheck, CrossEntropyLoss) {
  Rng rng(118);
  Tensor logits = rng.normal_tensor({4, 5});
  const std::vector<int64_t> targets = {0, 2, 4, 1};
  CrossEntropyLoss loss;
  (void)loss.forward(logits, targets);
  Tensor g = loss.backward();
  const double h = 1e-3;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(h);
    lm[i] -= static_cast<float>(h);
    const double num = (CrossEntropyLoss::evaluate(lp, targets) -
                        CrossEntropyLoss::evaluate(lm, targets)) /
                       (2 * h);
    expect_close(g[i], num, "logit grad");
  }
}

/// Whole-model variant: float32 end-to-end composition makes individual
/// finite differences noisy (BN/LN conditioning, catastrophic
/// cancellation), so require a large majority of sampled gradients to
/// match instead of every one. A wiring bug (missing term, wrong branch)
/// corrupts essentially all gradients and still fails this test; each
/// layer's gradient is verified element-exact in its own test above.
void check_gradients_statistical(Module& m, Tensor x, uint64_t seed,
                                 double h = 1e-3, double rel_tol = 5e-2,
                                 double required_fraction = 0.85) {
  GradHarness harness(m, std::move(x), seed);
  int64_t checked = 0, ok = 0;
  auto tally = [&](double analytic, double numeric) {
    ++checked;
    const double tol = rel_tol * std::max({1.0, std::fabs(analytic),
                                           std::fabs(numeric)});
    if (std::fabs(analytic - numeric) <= tol) ++ok;
  };
  const Tensor gx = harness.analytic_input_grad();
  const int64_t n = harness.input().numel();
  const int64_t stride = std::max<int64_t>(1, n / 24);
  for (int64_t i = 0; i < n; i += stride) {
    tally(gx[i], harness.numeric_input_grad(i, h));
  }
  for (Parameter* p : m.parameters()) {
    (void)harness.analytic_input_grad();
    const int64_t pn = p->value.numel();
    const int64_t pstride = std::max<int64_t>(1, pn / 6);
    for (int64_t i = 0; i < pn; i += pstride) {
      tally(p->grad[i], harness.numeric_param_grad(*p, i, h));
    }
  }
  EXPECT_GE(static_cast<double>(ok),
            required_fraction * static_cast<double>(checked))
      << ok << "/" << checked << " gradients matched";
}

TEST(GradCheck, WholeTinyDeit) {
  Rng rng(119);
  models::TinyDeit::Config cfg;
  cfg.image_size = 8;
  cfg.patch = 4;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.depth = 1;
  cfg.num_classes = 3;
  models::TinyDeit m(cfg, rng);
  check_gradients_statistical(m, rng.normal_tensor({2, 3, 8, 8}), 19);
}

TEST(GradCheck, WholeTinyResNet) {
  Rng rng(120);
  models::TinyResNet m(3, 4, rng, /*width=*/4, /*blocks_per_stage=*/1);
  check_gradients_statistical(m, rng.normal_tensor({2, 3, 8, 8}), 20);
}

}  // namespace
}  // namespace ge::nn
