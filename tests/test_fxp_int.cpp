// FxpFormat and IntFormat conformance: coding, ranges, two's-complement
// bit patterns, and INT's scale-factor metadata register.
#include <gtest/gtest.h>

#include <cmath>

#include "formats/fxp.hpp"
#include "formats/intq.hpp"
#include "tensor/rng.hpp"

namespace ge::fmt {
namespace {

/// ---------------- FxP -------------------------------------------------------

TEST(Fxp, RejectsBadParameters) {
  EXPECT_THROW(FxpFormat(0, 0), std::invalid_argument);
  EXPECT_THROW(FxpFormat(-1, 4), std::invalid_argument);
  EXPECT_THROW(FxpFormat(40, 40), std::invalid_argument);
}

TEST(Fxp, BitWidthAndRadix) {
  FxpFormat f(15, 16);
  EXPECT_EQ(f.bit_width(), 32);
  EXPECT_EQ(f.radix(), 16);
  EXPECT_EQ(f.spec(), "fxp_1_15_16");
}

TEST(Fxp, TableOneRow) {
  FxpFormat f(15, 16);  // the paper's FxP(1,15,16)
  EXPECT_EQ(f.abs_max(), 32768.0);
  EXPECT_NEAR(f.abs_min(), 1.52587890625e-5, 1e-12);
  EXPECT_NEAR(f.dynamic_range_db(), 186.64, 0.1);
}

TEST(Fxp, QuantizesToGrid) {
  FxpFormat f(3, 4);  // step = 1/16
  EXPECT_EQ(f.quantize_value(0.25f), 0.25f);
  EXPECT_EQ(f.quantize_value(0.26f), 0.25f);
  EXPECT_EQ(f.quantize_value(0.0f), 0.0f);
  EXPECT_EQ(f.quantize_value(-1.37f), -1.375f);
}

TEST(Fxp, SaturatesAtCodeLimits) {
  FxpFormat f(3, 4);
  EXPECT_EQ(f.quantize_value(100.0f), 8.0f - 1.0f / 16.0f);  // max code
  EXPECT_EQ(f.quantize_value(-100.0f), -8.0f);               // min code
}

TEST(Fxp, TwosComplementEncoding) {
  FxpFormat f(3, 4);  // 8-bit total
  EXPECT_EQ(f.real_to_format(1.0f).value(), 16u);         // 1.0 * 2^4
  EXPECT_EQ(f.real_to_format(-1.0f).value(), 0xF0u);      // -16 in 8 bits
  EXPECT_EQ(f.real_to_format(0.0f).value(), 0u);
  EXPECT_EQ(f.real_to_format(-8.0f).value(), 0x80u);      // most negative
}

TEST(Fxp, DecodeSignExtends) {
  FxpFormat f(3, 4);
  EXPECT_EQ(f.format_to_real(BitString(0xF0, 8)), -1.0f);
  EXPECT_EQ(f.format_to_real(BitString(0x80, 8)), -8.0f);
  EXPECT_EQ(f.format_to_real(BitString(0x7F, 8)), 8.0f - 1.0f / 16.0f);
}

TEST(Fxp, SignBitFlipIsCatastrophic) {
  // Flipping the MSB (sign) of a small positive value lands far negative —
  // the classic FxP vulnerability.
  FxpFormat f(7, 8);
  BitString b = f.real_to_format(0.5f);
  b.flip_bit(f.bit_width() - 1);
  // setting the MSB subtracts 2^(i+f) codes = 2^i in value
  EXPECT_NEAR(f.format_to_real(b), 0.5f - 128.0f, 1e-3f);
}

TEST(Fxp, TensorMatchesScalarPath) {
  FxpFormat f(3, 12);
  Rng rng(11);
  Tensor t = rng.normal_tensor({256}, 0.0f, 4.0f);
  Tensor q = f.real_to_format_tensor(t);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(q[i], f.format_to_real(f.real_to_format(t[i])));
  }
}

class FxpGrid : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FxpGrid, RoundTripIdempotentSymmetricMonotone) {
  const auto [i, fbits] = GetParam();
  FxpFormat f(i, fbits);
  Rng rng(40 + i + fbits);
  float prev_q = -1e30f;
  std::vector<float> xs;
  for (int k = 0; k < 200; ++k) xs.push_back(rng.normal(0.0f, 3.0f));
  std::sort(xs.begin(), xs.end());
  for (float x : xs) {
    const float q = f.quantize_value(x);
    EXPECT_EQ(f.quantize_value(q), q);
    EXPECT_GE(q, prev_q);
    prev_q = q;
  }
  // symmetry away from the asymmetric two's-complement extreme
  for (int k = 0; k < 100; ++k) {
    const float x = rng.uniform(0.0f, static_cast<float>(f.abs_max()) * 0.9f);
    EXPECT_EQ(f.quantize_value(-x), -f.quantize_value(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, FxpGrid,
                         ::testing::Values(std::pair{1, 2}, std::pair{2, 3},
                                           std::pair{3, 4}, std::pair{4, 4},
                                           std::pair{3, 12}, std::pair{7, 8},
                                           std::pair{15, 16}),
                         [](const auto& info) {
                           return "i" + std::to_string(info.param.first) +
                                  "f" + std::to_string(info.param.second);
                         });

/// ---------------- INT -------------------------------------------------------

TEST(Int, RejectsBadParameters) {
  EXPECT_THROW(IntFormat(1), std::invalid_argument);
  EXPECT_THROW(IntFormat(33), std::invalid_argument);
}

TEST(Int, TableOneRows) {
  IntFormat i8(8);
  EXPECT_EQ(i8.abs_max(), 127.0);
  EXPECT_EQ(i8.abs_min(), 1.0);
  EXPECT_NEAR(i8.dynamic_range_db(), 42.08, 0.05);
  IntFormat i16(16);
  EXPECT_EQ(i16.abs_max(), 32767.0);
  EXPECT_NEAR(i16.dynamic_range_db(), 90.31, 0.05);
}

TEST(Int, ScaleCapturedFromTensor) {
  IntFormat f(8);
  Tensor t({4}, {-1.0f, 0.5f, 2.54f, 0.0f});
  Tensor q = f.real_to_format_tensor(t);
  EXPECT_NEAR(f.scale(), 2.54f / 127.0f, 1e-7f);
  // max element is exactly representable
  EXPECT_NEAR(q[2], 2.54f, 1e-6f);
  // everything lies on the scale grid
  for (int64_t i = 0; i < 4; ++i) {
    const float code = q[i] / f.scale();
    EXPECT_NEAR(code, std::nearbyint(code), 1e-3f);
  }
}

TEST(Int, FixedRangeOverridesProfiling) {
  IntFormat f(8);
  f.set_range(10.0f);
  Tensor t({2}, {1.0f, 2.0f});  // max abs 2, but range pinned at 10
  (void)f.real_to_format_tensor(t);
  EXPECT_NEAR(f.scale(), 10.0f / 127.0f, 1e-7f);
  EXPECT_THROW(f.set_range(0.0f), std::invalid_argument);
}

TEST(Int, SymmetricSaturation) {
  IntFormat f(8);
  f.set_range(1.0f);  // scale = 1/127
  // Values beyond the range clamp to +/- max_code * scale = +/- 1.0.
  Tensor t({2}, {50.0f, -50.0f});
  Tensor q = f.real_to_format_tensor(t);
  EXPECT_NEAR(q[0], 1.0f, 1e-6f);
  EXPECT_NEAR(q[1], -1.0f, 1e-6f);
}

TEST(Int, ScalarCodingRoundTrips) {
  IntFormat f(8);
  f.set_range(12.7f);  // scale = 0.1
  const BitString b = f.real_to_format(0.55f);
  EXPECT_NEAR(f.format_to_real(b), 0.6f, 1e-5f);  // rounds to 6 * 0.1
  const BitString neg = f.real_to_format(-1.0f);
  EXPECT_NEAR(f.format_to_real(neg), -1.0f, 1e-5f);
}

TEST(Int, MetadataScaleRegisterIsFp32Bits) {
  IntFormat f(8);
  f.set_range(127.0f);  // scale = 1.0
  const auto fields = f.metadata_fields();
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].name, "scale");
  EXPECT_EQ(fields[0].bit_width, 32);
  const BitString reg = f.read_metadata("scale", 0);
  EXPECT_EQ(reg.value(), 0x3F800000u);  // 1.0f
}

TEST(Int, MetadataExponentBitFlipDoublesAllValues) {
  IntFormat f(8);
  Tensor t({3}, {1.0f, -2.0f, 4.0f});
  Tensor q = f.real_to_format_tensor(t);
  BitString reg = f.read_metadata("scale", 0);
  reg.flip_bit(23);  // lowest exponent bit of the FP32 scale register
  f.write_metadata("scale", 0, reg);
  Tensor corrupted = f.decode_last_tensor();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(corrupted[i], q[i] * 2.0f, 1e-5f);
  }
}

TEST(Int, MetadataErrorsAreChecked) {
  IntFormat f(8);
  EXPECT_THROW(f.read_metadata("nope", 0), std::logic_error);
  EXPECT_THROW(f.read_metadata("scale", 1), std::logic_error);
  EXPECT_THROW(f.write_metadata("scale", 0, BitString(0, 8)),
               std::logic_error);
  EXPECT_THROW(f.decode_last_tensor(), std::logic_error);
}

class IntGrid : public ::testing::TestWithParam<int> {};

TEST_P(IntGrid, QuantizationErrorBoundedByHalfStep) {
  IntFormat f(GetParam());
  Rng rng(60 + GetParam());
  Tensor t = rng.normal_tensor({512}, 0.0f, 2.0f);
  Tensor q = f.real_to_format_tensor(t);
  const float half_step = f.scale() / 2.0f + 1e-6f;
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(q[i] - t[i]), half_step);
  }
}

TEST_P(IntGrid, QuantizedValuesStayInSymmetricRange) {
  IntFormat f(GetParam());
  Rng rng(70 + GetParam());
  Tensor t = rng.normal_tensor({512}, 0.0f, 5.0f);
  Tensor q = f.real_to_format_tensor(t);
  const float limit =
      static_cast<float>(f.max_code()) * f.scale() + 1e-5f;
  for (int64_t i = 0; i < q.numel(); ++i) {
    EXPECT_LE(std::fabs(q[i]), limit);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, IntGrid, ::testing::Values(2, 4, 6, 8, 12, 16),
                         [](const auto& info) {
                           return "int" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ge::fmt
