// The parallel_for contract: chunk boundaries depend only on (begin, end,
// grain) — never on the thread count — so any loop whose chunks write
// disjoint outputs produces bitwise-identical results at any
// GE_NUM_THREADS. These tests pin the contract and its edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "tensor/rng.hpp"

namespace ge::parallel {
namespace {

/// Restores the configured thread count on scope exit so tests don't leak
/// settings into each other.
struct ThreadGuard {
  int saved = num_threads();
  ~ThreadGuard() { set_num_threads(saved); }
};

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  int calls = 0;
  parallel_for(0, 0, 4, [&](int64_t, int64_t) { ++calls; });
  parallel_for(5, 5, 4, [&](int64_t, int64_t) { ++calls; });
  parallel_for(7, 3, 4, [&](int64_t, int64_t) { ++calls; });  // end < begin
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, RangeSmallerThanGrainIsOneChunk) {
  std::vector<std::pair<int64_t, int64_t>> chunks;
  parallel_for(2, 5, 100,
               [&](int64_t lo, int64_t hi) { chunks.emplace_back(lo, hi); });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 2);
  EXPECT_EQ(chunks[0].second, 5);
}

TEST(ParallelFor, GrainOneCoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  set_num_threads(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(0, kN, 1, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(hi, lo + 1);  // grain 1: every chunk is a single index
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, NonPositiveGrainIsTreatedAsOne) {
  std::atomic<int64_t> total{0};
  parallel_for(0, 10, 0, [&](int64_t lo, int64_t hi) { total += hi - lo; });
  EXPECT_EQ(total.load(), 10);
  total = 0;
  parallel_for(0, 10, -3, [&](int64_t lo, int64_t hi) { total += hi - lo; });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelFor, ChunkBoundariesIndependentOfThreadCount) {
  ThreadGuard guard;
  auto boundaries_at = [](int threads) {
    set_num_threads(threads);
    std::vector<std::pair<int64_t, int64_t>> chunks(8, {-1, -1});
    parallel_for(3, 3 + 8 * 7, 7, [&](int64_t lo, int64_t hi) {
      chunks[static_cast<size_t>((lo - 3) / 7)] = {lo, hi};
    });
    return chunks;
  };
  EXPECT_EQ(boundaries_at(1), boundaries_at(4));
}

TEST(ParallelFor, ResultsBitwiseIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  constexpr int64_t kN = 10000;
  auto run = [&](int threads) {
    set_num_threads(threads);
    std::vector<double> out(kN);
    parallel_for(0, kN, 64, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        out[static_cast<size_t>(i)] = std::sin(double(i)) * 1.000001;
      }
    });
    return out;
  };
  const auto serial = run(1);
  const auto par = run(4);
  EXPECT_EQ(serial, par);  // element-wise bitwise equality for doubles
}

TEST(ParallelFor, ExceptionsPropagateToCaller) {
  ThreadGuard guard;
  set_num_threads(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](int64_t lo, int64_t) {
                     if (lo == 42) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int64_t> total{0};
  parallel_for(0, 10, 1, [&](int64_t lo, int64_t hi) { total += hi - lo; });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<int> inner_regions{0};
  // 16 chunks over 4 threads: every thread runs several chunks, and every
  // chunk issues several nested loops back to back. The region flag must
  // survive the end of each nested loop (restore, not clear), or the
  // second nested call would take the parallel path and deadlock.
  parallel_for(0, 16, 1, [&](int64_t, int64_t) {
    EXPECT_TRUE(in_parallel_region());
    for (int rep = 0; rep < 3; ++rep) {
      parallel_for(0, 8, 1, [&](int64_t, int64_t) {
        EXPECT_TRUE(in_parallel_region());
        inner_regions++;
      });
      EXPECT_TRUE(in_parallel_region());  // still inside the outer chunk
    }
  });
  EXPECT_EQ(inner_regions.load(), 16 * 3 * 8);
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelForWorkers, SlotsAreWithinBoundAndChunksCovered) {
  ThreadGuard guard;
  set_num_threads(4);
  constexpr int kMaxWorkers = 2;
  std::vector<std::atomic<int>> hits(20);
  for (auto& h : hits) h.store(0);
  parallel_for_workers(0, 20, 1, kMaxWorkers,
                       [&](int slot, int64_t lo, int64_t hi) {
                         EXPECT_GE(slot, 0);
                         EXPECT_LT(slot, kMaxWorkers);
                         for (int64_t i = lo; i < hi; ++i) {
                           hits[static_cast<size_t>(i)]++;
                         }
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForWorkers, SingleWorkerRunsSerialOnSlotZero) {
  ThreadGuard guard;
  set_num_threads(4);
  parallel_for_workers(0, 10, 1, 1, [&](int slot, int64_t, int64_t) {
    EXPECT_EQ(slot, 0);
  });
}

TEST(GrainFor, ScalesInverselyWithWorkPerItem) {
  EXPECT_EQ(grain_for(1, 1024), 1024);
  EXPECT_EQ(grain_for(1024, 1024), 1);
  EXPECT_EQ(grain_for(1 << 30, 1024), 1);  // never below 1
  EXPECT_EQ(grain_for(0, 1024), 1024);     // degenerate work treated as 1
}

TEST(NumThreads, SetAndClampAndRestore) {
  ThreadGuard guard;
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);  // clamped up to 1
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(-5);
  EXPECT_EQ(num_threads(), 1);
}

TEST(RngChild, IndependentOfDrawHistoryAndConst) {
  const Rng base(42);
  Rng drawn(42);
  (void)drawn.uniform();
  (void)drawn.randint(0, 100);
  // child() depends only on (seed, stream), not on draws made before.
  Rng a = base.child(7);
  Rng b = drawn.child(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()());
  }
}

TEST(RngChild, DistinctStreamsDecorrelate) {
  const Rng base(42);
  Rng a = base.child(0);
  Rng b = base.child(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.engine()() == b.engine()()) ++equal;
  }
  EXPECT_LT(equal, 4);  // distinct streams should almost never collide
}

TEST(RngChild, DifferentSeedsGiveDifferentChildren) {
  const Rng s1(1), s2(2);
  EXPECT_NE(s1.child(0).engine()(), s2.child(0).engine()());
}

}  // namespace
}  // namespace ge::parallel
