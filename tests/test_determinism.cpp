// End-to-end determinism across thread counts: the same model, batch and
// seed must produce bitwise-identical logits and campaign statistics at
// GE_NUM_THREADS=1 and 4. This is the acceptance test for the parallel
// subsystem's design contract (DESIGN.md §"Threading model & determinism").
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "data/synthetic.hpp"
#include "io/campaign_state.hpp"
#include "models/model_factory.hpp"
#include "obs/metrics_server.hpp"
#include "obs/profiler.hpp"
#include "obs/run_log.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"

namespace ge::core {
namespace {

struct ThreadGuard {
  int saved = parallel::num_threads();
  ~ThreadGuard() { parallel::set_num_threads(saved); }
};

data::SyntheticVisionConfig small_cfg() {
  data::SyntheticVisionConfig cfg;
  cfg.train_count = 16;
  cfg.test_count = 64;
  return cfg;
}

struct Fixture {
  data::SyntheticVision data;
  std::unique_ptr<nn::Module> model;
  data::Batch batch;

  Fixture()
      : data(small_cfg()),
        model(models::make_model("simple_cnn", data.config(), 3)),
        batch(data::take(data.test(), 0, 8)) {
    model->eval();
  }
};

CampaignConfig campaign_cfg(bool with_replicas) {
  CampaignConfig cfg;
  cfg.format_spec = "fp_e5m10";
  cfg.site = InjectionSite::kActivationValue;
  cfg.model = ErrorModel::kBitFlip;
  cfg.injections_per_layer = 6;
  cfg.seed = 77;
  if (with_replicas) {
    cfg.make_replica = [] {
      return models::make_model("simple_cnn", small_cfg(), 0);
    };
  }
  return cfg;
}

void expect_same_result(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.golden_accuracy, b.golden_accuracy);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (size_t i = 0; i < a.layers.size(); ++i) {
    const auto& la = a.layers[i];
    const auto& lb = b.layers[i];
    EXPECT_EQ(la.layer, lb.layer);
    EXPECT_EQ(la.injections, lb.injections);
    EXPECT_EQ(la.sdc_count, lb.sdc_count);
    EXPECT_EQ(la.mean_mismatch_rate, lb.mean_mismatch_rate);
    EXPECT_EQ(la.mean_delta_loss, lb.mean_delta_loss);
    EXPECT_EQ(la.max_delta_loss, lb.max_delta_loss);
    EXPECT_EQ(la.ci95_delta_loss, lb.ci95_delta_loss);
    EXPECT_EQ(la.delta_losses, lb.delta_losses);  // bitwise, per trial
    EXPECT_EQ(la.sdc_flags, lb.sdc_flags);
  }
}

TEST(Determinism, LogitsBitwiseIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Fixture f;
  parallel::set_num_threads(1);
  const Tensor serial = (*f.model)(f.batch.images);
  parallel::set_num_threads(4);
  const Tensor par = (*f.model)(f.batch.images);
  EXPECT_TRUE(serial.equals(par));
}

TEST(Determinism, CampaignBitwiseIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Fixture f;
  const CampaignConfig cfg = campaign_cfg(/*with_replicas=*/true);
  parallel::set_num_threads(1);
  const CampaignResult serial = run_campaign(*f.model, f.batch, cfg);
  parallel::set_num_threads(4);
  const CampaignResult par = run_campaign(*f.model, f.batch, cfg);
  expect_same_result(serial, par);
}

TEST(Determinism, ReplicaPathMatchesSerialPrimaryPath) {
  // With make_replica unset every trial runs on the primary model; with it
  // set trials fan out over replicas. The child-RNG-stream scheme must make
  // the two paths indistinguishable in their outputs.
  ThreadGuard guard;
  Fixture f;
  parallel::set_num_threads(4);
  const CampaignResult primary_only =
      run_campaign(*f.model, f.batch, campaign_cfg(/*with_replicas=*/false));
  const CampaignResult replicated =
      run_campaign(*f.model, f.batch, campaign_cfg(/*with_replicas=*/true));
  expect_same_result(primary_only, replicated);
}

TEST(Determinism, TelemetryDoesNotPerturbCampaignResults) {
  // The observability contract: tracing + metrics read state but never feed
  // back into RNG streams, chunking, or arithmetic, so a fully-instrumented
  // run is bitwise identical to a dark one.
  ThreadGuard guard;
  Fixture f;
  parallel::set_num_threads(4);
  const CampaignConfig cfg = campaign_cfg(/*with_replicas=*/true);

  CampaignResult dark, lit;
  {
    obs::TelemetryScope scope(/*tracing=*/false, /*metrics=*/false);
    dark = run_campaign(*f.model, f.batch, cfg);
  }
  {
    obs::TelemetryScope scope(/*tracing=*/true, /*metrics=*/true);
    obs::reset_all();
    lit = run_campaign(*f.model, f.batch, cfg);
    // sanity: instrumentation actually fired during the lit run
    EXPECT_GT(obs::trace_event_count(), 0u);
    EXPECT_GT(obs::counter_value(obs::Counter::kTrials), 0u);
    obs::reset_all();
  }
  expect_same_result(dark, lit);
}

// ---------------------------------------------------------------------------
// Pinned digests: FNV-1a over the full campaign statistics, captured from the
// pre-refactor (deep-copy tensor) tree. They pin the numerical behaviour of
// the whole pipeline — any change to quantisation kernels, RNG streams, or
// the shared-storage memory model that alters one bit of one trial shows up
// here. Regenerate only for an intentional numerics change (see
// DESIGN.md §"Memory model") and say so in the commit message.
//
// The digest function itself now lives in the library (campaign_digest,
// core/campaign.cpp) so the CLI prints the exact value pinned here.

void expect_pinned_digest(CampaignConfig cfg, uint64_t want) {
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    Fixture f;
    parallel::set_num_threads(threads);
    const CampaignResult r = run_campaign(*f.model, f.batch, cfg);
    EXPECT_EQ(campaign_digest(r), want) << "threads=" << threads;
  }
}

TEST(Determinism, PinnedDigestActivationCampaign) {
  expect_pinned_digest(campaign_cfg(/*with_replicas=*/true),
                       0x347820fff760869bULL);
}

TEST(Determinism, PinnedDigestMetadataCampaign) {
  CampaignConfig cfg = campaign_cfg(/*with_replicas=*/true);
  cfg.format_spec = "bfp_e5m5_b16";
  cfg.site = InjectionSite::kMetadata;
  expect_pinned_digest(cfg, 0xa6871332fe0e0fbcULL);
}

TEST(Determinism, PinnedDigestWeightCampaign) {
  CampaignConfig cfg = campaign_cfg(/*with_replicas=*/true);
  cfg.format_spec = "int8";
  cfg.site = InjectionSite::kWeightValue;
  expect_pinned_digest(cfg, 0x05ebde590ffab9b7ULL);
}

TEST(Determinism, PinnedDigestsUnchangedWithPrefixCacheOff) {
  // The golden-prefix cache (on by default, so every pinned test above
  // already runs the suffix-replay path) is purely a speed knob: turning
  // it off must reproduce each pinned digest exactly, for all three
  // injection sites, at 1 and 4 threads.
  CampaignConfig act = campaign_cfg(/*with_replicas=*/true);
  act.use_prefix_cache = false;
  expect_pinned_digest(act, 0x347820fff760869bULL);

  CampaignConfig meta = campaign_cfg(/*with_replicas=*/true);
  meta.format_spec = "bfp_e5m5_b16";
  meta.site = InjectionSite::kMetadata;
  meta.use_prefix_cache = false;
  expect_pinned_digest(meta, 0xa6871332fe0e0fbcULL);

  CampaignConfig wgt = campaign_cfg(/*with_replicas=*/true);
  wgt.format_spec = "int8";
  wgt.site = InjectionSite::kWeightValue;
  wgt.use_prefix_cache = false;
  expect_pinned_digest(wgt, 0x05ebde590ffab9b7ULL);
}

TEST(Determinism, MultiSiteCampaignCacheOnOffBitwiseIdentical) {
  // Multi-point trials (sites_per_trial > 1) must also be independent of
  // the cache mode and the thread count: companion selection draws from
  // the per-trial stream, never from anything execution-order dependent.
  ThreadGuard guard;
  for (InjectionSite site : {InjectionSite::kActivationValue,
                             InjectionSite::kWeightValue}) {
    CampaignConfig cfg = campaign_cfg(/*with_replicas=*/true);
    cfg.site = site;
    if (site == InjectionSite::kWeightValue) cfg.format_spec = "int8";
    cfg.sites_per_trial = 3;
    std::vector<uint64_t> digests;
    for (const bool cache : {true, false}) {
      for (const int threads : {1, 4}) {
        Fixture f;
        parallel::set_num_threads(threads);
        cfg.use_prefix_cache = cache;
        digests.push_back(
            campaign_digest(run_campaign(*f.model, f.batch, cfg)));
      }
    }
    for (size_t i = 1; i < digests.size(); ++i) {
      EXPECT_EQ(digests[i], digests[0])
          << "site=" << to_string(site) << " variant " << i;
    }
    // and the companions actually changed the outcome vs classic trials
    CampaignConfig classic = cfg;
    classic.sites_per_trial = 1;
    Fixture f;
    parallel::set_num_threads(4);
    EXPECT_NE(campaign_digest(run_campaign(*f.model, f.batch, classic)),
              digests[0])
        << "site=" << to_string(site);
  }
}

TEST(Determinism, PinnedDigestSurvivesSharding) {
  // 3 shards run as separate "processes" (fresh fixtures), merged, and
  // finalized: the exact digest pinned for the single-process run, at
  // both thread counts (DESIGN.md §9).
  const uint64_t want = 0x347820fff760869bULL;
  const CampaignConfig cfg = campaign_cfg(/*with_replicas=*/true);
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    std::vector<CampaignProgress> parts;
    for (int i = 0; i < 3; ++i) {
      Fixture f;
      CampaignRunOptions opts;
      opts.shards = 3;
      opts.shard_index = i;
      parts.push_back(run_campaign_trials(*f.model, f.batch, cfg, opts));
    }
    const CampaignResult r =
        finalize_campaign(merge_campaign_progress(parts));
    EXPECT_EQ(campaign_digest(r), want) << "threads=" << threads;
  }
}

TEST(Determinism, PinnedDigestSurvivesResume) {
  // Kill after 8 trials, resume in a fresh fixture: same pinned digest.
  const uint64_t want = 0x347820fff760869bULL;
  const CampaignConfig cfg = campaign_cfg(/*with_replicas=*/true);
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    const std::string path = "/tmp/ge_test_determinism_resume.gec";
    {
      Fixture f;
      CampaignRunOptions opts;
      opts.checkpoint_every = 3;
      opts.checkpoint_path = path;
      opts.abort_after = 8;
      run_campaign_trials(*f.model, f.batch, cfg, opts);
    }
    Fixture f;
    const CampaignProgress saved = io::load_campaign_progress(path);
    EXPECT_GT(saved.completed_trials(), 0);
    EXPECT_LT(saved.completed_trials(), saved.total_trials());
    CampaignRunOptions opts;
    opts.resume_from = &saved;
    const CampaignResult r =
        finalize_campaign(run_campaign_trials(*f.model, f.batch, cfg, opts));
    EXPECT_EQ(campaign_digest(r), want) << "threads=" << threads;
    std::remove(path.c_str());
  }
}

TEST(Determinism, PinnedDigestUnchangedWithFullAnalyticsOn) {
  // The PR-5 analytics surface all at once — per-trial RunLog stream,
  // heartbeat records, histograms, and a live /metrics endpoint — with the
  // same acceptance bar as --trace: the pinned digest must not move by a
  // single bit, at either thread count.
  const uint64_t want = 0x347820fff760869bULL;
  const CampaignConfig cfg = campaign_cfg(/*with_replicas=*/true);
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    Fixture f;
    parallel::set_num_threads(threads);
    obs::TelemetryScope scope(/*tracing=*/true, /*metrics=*/true);
    obs::reset_all();
    obs::MetricsServer server(/*port=*/0);
    ASSERT_TRUE(server.ok()) << server.last_error();
    std::ostringstream report;
    obs::RunLog log(report);
    CampaignRunOptions opts;
    opts.run_log = &log;
    const CampaignResult r =
        finalize_campaign(run_campaign_trials(*f.model, f.batch, cfg, opts));
    EXPECT_EQ(campaign_digest(r), want) << "threads=" << threads;
    // and the stream actually carried the v2 analytics records
    const std::string text = report.str();
    EXPECT_NE(text.find("\"type\":\"trial\""), std::string::npos);
    EXPECT_NE(text.find("\"type\":\"heartbeat\""), std::string::npos);
    EXPECT_NE(text.find("\"class\":"), std::string::npos);
    obs::reset_all();
  }
}

TEST(Determinism, PinnedDigestUnchangedWithProfilingOn) {
  // The profiler aggregates span statistics, samples hardware counters
  // and memory watermarks — but, like every other obs surface, only
  // *reads* program state: each pinned digest must reproduce bit-for-bit
  // with profiling on, at 1 and 4 threads, for all three injection sites.
  struct Pinned {
    const char* spec;
    InjectionSite site;
    uint64_t want;
  };
  const Pinned pins[] = {
      {"fp_e5m10", InjectionSite::kActivationValue, 0x347820fff760869bULL},
      {"bfp_e5m5_b16", InjectionSite::kMetadata, 0xa6871332fe0e0fbcULL},
      {"int8", InjectionSite::kWeightValue, 0x05ebde590ffab9b7ULL},
  };
  ThreadGuard guard;
  for (const Pinned& pin : pins) {
    CampaignConfig cfg = campaign_cfg(/*with_replicas=*/true);
    cfg.format_spec = pin.spec;
    cfg.site = pin.site;
    for (int threads : {1, 4}) {
      Fixture f;
      parallel::set_num_threads(threads);
      obs::TelemetryScope scope(/*tracing=*/false, /*metrics=*/true);
      obs::ProfilingScope prof(true);
      obs::reset_all();
      const CampaignResult r = run_campaign(*f.model, f.batch, cfg);
      EXPECT_EQ(campaign_digest(r), pin.want)
          << pin.spec << " threads=" << threads;
      // and the aggregate actually saw the campaign's trial spans, keyed
      // by the campaign's format attribution
      bool saw_trial = false;
      for (const auto& s : obs::profile_snapshot()) {
        if (s.category == "campaign" && s.name == "trial" &&
            s.format == pin.spec) {
          saw_trial = true;
        }
      }
      EXPECT_TRUE(saw_trial) << pin.spec << " threads=" << threads;
      obs::reset_all();
    }
  }
}

TEST(Determinism, RepeatedCampaignOnSameModelIsStable) {
  // run_campaign must fully restore the model: a second identical campaign
  // sees the same weights and produces the same statistics.
  ThreadGuard guard;
  Fixture f;
  parallel::set_num_threads(4);
  const CampaignConfig cfg = campaign_cfg(/*with_replicas=*/true);
  const CampaignResult first = run_campaign(*f.model, f.batch, cfg);
  const CampaignResult second = run_campaign(*f.model, f.batch, cfg);
  expect_same_result(first, second);
}

}  // namespace
}  // namespace ge::core
