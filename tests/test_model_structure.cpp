// Structural checks on the model zoo: the module-tree paths the emulator
// and campaigns address must be stable, and parameter bookkeeping must be
// exact (these paths appear in EXPERIMENTS.md output).
#include <gtest/gtest.h>

#include "core/emulator.hpp"
#include "data/dataloader.hpp"
#include "models/model_factory.hpp"
#include "models/tiny_deit.hpp"
#include "models/tiny_resnet.hpp"

namespace ge {
namespace {

data::SyntheticVisionConfig cfg() {
  data::SyntheticVisionConfig c;
  c.train_count = 8;
  c.test_count = 16;
  return c;
}

TEST(ModelStructure, TinyResNetHasExpectedInstrumentationSites) {
  auto m = models::make_model("tiny_resnet", cfg(), 1);
  core::EmulatorConfig ecfg;
  ecfg.format_spec = "fp16";
  core::Emulator emu(*m, ecfg);
  // stem + 6 blocks x 2 convs + 2 projection convs + head
  EXPECT_EQ(emu.sites().size(), 16u);
  EXPECT_NE(m->find_module("stem_conv"), nullptr);
  EXPECT_NE(m->find_module("block2.proj_conv"), nullptr);
  EXPECT_NE(m->find_module("head"), nullptr);
  EXPECT_EQ(m->find_module("block0.proj_conv"), nullptr);  // identity skip
}

TEST(ModelStructure, TinyDeitHasExpectedInstrumentationSites) {
  auto m = models::make_model("tiny_deit", cfg(), 1);
  core::EmulatorConfig ecfg;
  ecfg.format_spec = "fp16";
  core::Emulator emu(*m, ecfg);
  // patch conv + 3 blocks x (qkv, proj, fc1, fc2) + head
  EXPECT_EQ(emu.sites().size(), 14u);
  EXPECT_NE(m->find_module("patch.proj"), nullptr);
  EXPECT_NE(m->find_module("block1.attn.qkv"), nullptr);
  EXPECT_NE(m->find_module("block2.mlp.fc2"), nullptr);
}

TEST(ModelStructure, ParameterCountsAreExact) {
  auto mlp = models::make_model("mlp", cfg(), 1);
  // 768*128+128 + 128*64+64 + 64*10+10
  EXPECT_EQ(mlp->parameter_count(), 768 * 128 + 128 + 128 * 64 + 64 +
                                        64 * 10 + 10);
  auto cnn = models::make_model("simple_cnn", cfg(), 1);
  EXPECT_EQ(cnn->parameter_count(),
            (3 * 9 + 1) * 16 + 2 * 16 +   // conv1 + bn1
                (16 * 9 + 1) * 32 + 2 * 32 +  // conv2 + bn2
                (32 * 9 + 1) * 64 + 2 * 64 +  // conv3 + bn3
                64 * 10 + 10);                // head
}

TEST(ModelStructure, NamedParametersCoverAllParameters) {
  auto m = models::make_model("tiny_deit", cfg(), 1);
  const auto named = m->named_parameters();
  EXPECT_EQ(named.size(), m->parameters().size());
  int64_t total = 0;
  for (const auto& [name, p] : named) {
    EXPECT_FALSE(name.empty());
    total += p->value.numel();
  }
  EXPECT_EQ(total, m->parameter_count());
}

TEST(ModelStructure, BuffersAreSeparateFromParameters) {
  auto m = models::make_model("simple_cnn", cfg(), 1);
  // 3 BatchNorms x (running_mean, running_var)
  EXPECT_EQ(m->buffers().size(), 6u);
  for (auto* b : m->buffers()) {
    for (auto* p : m->parameters()) EXPECT_NE(b, p);
  }
}

TEST(ModelStructure, ForwardIsDeterministicInEval) {
  auto m = models::make_model("tiny_resnet", cfg(), 1);
  m->eval();
  data::SyntheticVision data(cfg());
  const auto batch = data::take(data.test(), 0, 4);
  const Tensor a = (*m)(batch.images);
  const Tensor b = (*m)(batch.images);
  EXPECT_TRUE(a.equals(b));
}

TEST(ModelStructure, TrainEvalBatchNormDiffers) {
  auto m = models::make_model("simple_cnn", cfg(), 1);
  data::SyntheticVision data(cfg());
  const auto batch = data::take(data.test(), 0, 4);
  m->train(true);
  const Tensor train_out = (*m)(batch.images);
  m->eval();
  const Tensor eval_out = (*m)(batch.images);
  EXPECT_FALSE(train_out.allclose(eval_out, 1e-3f));
}

}  // namespace
}  // namespace ge
