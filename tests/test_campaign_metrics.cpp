// Metrics (mismatch, ΔLoss) and campaign engine behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "core/campaign.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"

namespace ge::core {
namespace {

struct Fixture {
  data::SyntheticVision data;
  std::unique_ptr<nn::Module> model;
  data::Batch batch;

  Fixture()
      : data([] {
          data::SyntheticVisionConfig cfg;
          cfg.train_count = 16;
          cfg.test_count = 64;
          return cfg;
        }()),
        model(models::make_model("simple_cnn", data.config(), 3)),
        batch(data::take(data.test(), 0, 16)) {
    model->eval();
  }
};

TEST(Metrics, GoldenRunIsSelfConsistent) {
  Fixture f;
  const GoldenRun g = run_golden(*f.model, f.batch);
  EXPECT_EQ(g.logits.size(0), 16);
  EXPECT_EQ(g.predictions.size(), 16u);
  EXPECT_EQ(g.per_sample_loss.size(), 16u);
  double s = 0.0;
  for (float l : g.per_sample_loss) s += l;
  EXPECT_NEAR(g.mean_loss, s / 16.0, 1e-5);
}

TEST(Metrics, IdenticalLogitsGiveZeroOutcome) {
  Fixture f;
  const GoldenRun g = run_golden(*f.model, f.batch);
  const FaultOutcome out = compare_to_golden(g, g.logits, f.batch.labels);
  EXPECT_EQ(out.mismatched_samples, 0);
  EXPECT_EQ(out.delta_loss, 0.0f);
  EXPECT_FALSE(out.sdc);
}

TEST(Metrics, CorruptedLogitsAreDetected) {
  Fixture f;
  const GoldenRun g = run_golden(*f.model, f.batch);
  Tensor corrupted = g.logits;
  // force sample 0 to a different argmax with a big margin
  const int64_t C = corrupted.size(1);
  const int64_t wrong = (g.predictions[0] + 1) % C;
  corrupted[0 * C + wrong] = 1000.0f;
  const FaultOutcome out = compare_to_golden(g, corrupted, f.batch.labels);
  EXPECT_EQ(out.mismatched_samples, 1);
  EXPECT_NEAR(out.mismatch_rate, 1.0f / 16.0f, 1e-6f);
  EXPECT_TRUE(out.sdc);
  EXPECT_GT(out.delta_loss, 0.0f);
  EXPECT_GT(out.max_delta_loss, out.delta_loss);  // concentrated on sample 0
}

TEST(Metrics, NonFiniteLossesUseSentinel) {
  Fixture f;
  const GoldenRun g = run_golden(*f.model, f.batch);
  Tensor corrupted = g.logits;
  corrupted[0] = std::numeric_limits<float>::infinity();
  const FaultOutcome out = compare_to_golden(g, corrupted, f.batch.labels);
  EXPECT_TRUE(std::isfinite(out.delta_loss));
  EXPECT_TRUE(std::isfinite(out.max_delta_loss));
}

TEST(Metrics, ConvergenceTrackerStatistics) {
  ConvergenceTracker t;
  EXPECT_EQ(t.mean(), 0.0);
  EXPECT_EQ(t.ci95_halfwidth(), 0.0);
  for (double x : {1.0, 2.0, 3.0, 4.0}) t.add(x);
  EXPECT_EQ(t.count(), 4);
  EXPECT_NEAR(t.mean(), 2.5, 1e-12);
  EXPECT_NEAR(t.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_GT(t.ci95_halfwidth(), 0.0);
}

TEST(Metrics, ConvergenceCiShrinksWithSamples) {
  Rng rng(5);
  ConvergenceTracker t;
  for (int i = 0; i < 50; ++i) t.add(rng.normal(1.0f, 1.0f));
  const double ci50 = t.ci95_halfwidth();
  for (int i = 0; i < 450; ++i) t.add(rng.normal(1.0f, 1.0f));
  EXPECT_LT(t.ci95_halfwidth(), ci50 / 2.0);
}

TEST(Campaign, RunsAllInstrumentedLayers) {
  Fixture f;
  CampaignConfig cfg;
  cfg.format_spec = "fp_e5m10";
  cfg.injections_per_layer = 5;
  const CampaignResult r = run_campaign(*f.model, f.batch, cfg);
  EXPECT_EQ(r.layers.size(), 4u);  // 3 conv + 1 linear
  for (const auto& l : r.layers) {
    EXPECT_EQ(l.injections, 5);
    EXPECT_EQ(l.delta_losses.size(), 5u);
    EXPECT_GE(l.mean_delta_loss, 0.0);
  }
  EXPECT_GE(r.golden_accuracy, 0.0f);
}

TEST(Campaign, LayerFilterRestrictsScope) {
  Fixture f;
  CampaignConfig cfg;
  cfg.format_spec = "fp_e5m10";
  cfg.injections_per_layer = 2;
  {
    // discover one layer path
    EmulatorConfig ecfg;
    ecfg.format_spec = cfg.format_spec;
    Emulator emu(*f.model, ecfg);
    cfg.layers = {emu.sites()[0].path};
  }
  const CampaignResult r = run_campaign(*f.model, f.batch, cfg);
  ASSERT_EQ(r.layers.size(), 1u);
  EXPECT_EQ(r.layers[0].layer, cfg.layers[0]);
}

TEST(Campaign, MetadataCampaignSkipsValueOnlyFormats) {
  Fixture f;
  CampaignConfig cfg;
  cfg.format_spec = "fp_e5m10";  // no metadata
  cfg.site = InjectionSite::kMetadata;
  cfg.injections_per_layer = 2;
  const CampaignResult r = run_campaign(*f.model, f.batch, cfg);
  EXPECT_TRUE(r.layers.empty());
}

TEST(Campaign, DeterministicUnderSeed) {
  Fixture f;
  CampaignConfig cfg;
  cfg.format_spec = "int8";
  cfg.injections_per_layer = 4;
  cfg.seed = 77;
  const CampaignResult a = run_campaign(*f.model, f.batch, cfg);
  const CampaignResult b = run_campaign(*f.model, f.batch, cfg);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].delta_losses, b.layers[i].delta_losses);
  }
}

TEST(Campaign, ModelRestoredAfterCampaign) {
  Fixture f;
  std::vector<Tensor> originals;
  for (auto* p : f.model->parameters()) originals.push_back(p->value);
  CampaignConfig cfg;
  cfg.format_spec = "int8";
  cfg.injections_per_layer = 3;
  (void)run_campaign(*f.model, f.batch, cfg);
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_TRUE(f.model->parameters()[i]->value.equals(originals[i]));
  }
  for (auto& [p, m] : f.model->named_modules()) {
    EXPECT_EQ(m->hook_count(), 0);
  }
}

TEST(Campaign, MetadataInjectionsMoreSevereThanValue_BFP) {
  // The paper's Fig. 7 headline: BFP metadata faults dwarf value faults.
  Fixture f;
  CampaignConfig value_cfg;
  value_cfg.format_spec = "bfp_e5m5_b16";
  value_cfg.injections_per_layer = 20;
  value_cfg.seed = 11;
  CampaignConfig meta_cfg = value_cfg;
  meta_cfg.site = InjectionSite::kMetadata;
  const auto value_r = run_campaign(*f.model, f.batch, value_cfg);
  const auto meta_r = run_campaign(*f.model, f.batch, meta_cfg);
  EXPECT_GT(meta_r.network_mean_delta_loss(),
            value_r.network_mean_delta_loss());
}

TEST(Campaign, WeightSiteCampaignRunsAndRestores) {
  Fixture f;
  std::vector<Tensor> originals;
  for (auto* p : f.model->parameters()) originals.push_back(p->value);
  CampaignConfig cfg;
  cfg.format_spec = "fp_e5m10";
  cfg.site = InjectionSite::kWeightValue;
  cfg.injections_per_layer = 4;
  const CampaignResult r = run_campaign(*f.model, f.batch, cfg);
  EXPECT_EQ(r.layers.size(), 4u);
  for (const auto& l : r.layers) EXPECT_EQ(l.injections, 4);
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_TRUE(f.model->parameters()[i]->value.equals(originals[i]));
  }
}

TEST(Campaign, StuckAtZeroMilderThanFlips) {
  Fixture f;
  CampaignConfig flip;
  flip.format_spec = "fp_e5m10";
  flip.injections_per_layer = 30;
  flip.seed = 5;
  CampaignConfig sa0 = flip;
  sa0.model = ErrorModel::kStuckAt0;
  const auto rf = run_campaign(*f.model, f.batch, flip);
  const auto rs = run_campaign(*f.model, f.batch, sa0);
  // clearing bits can only shrink FP magnitudes; flips can explode them
  EXPECT_LE(rs.network_mean_delta_loss(), rf.network_mean_delta_loss());
}

TEST(Campaign, MultiBitInjectionsSupported) {
  Fixture f;
  CampaignConfig cfg;
  cfg.format_spec = "int8";
  cfg.injections_per_layer = 3;
  cfg.num_bits = 3;
  const auto r = run_campaign(*f.model, f.batch, cfg);
  EXPECT_EQ(r.layers.size(), 4u);
}

TEST(Campaign, GoldenAccuracyReflectsEmulatedModel) {
  Fixture f;
  CampaignConfig cfg;
  cfg.format_spec = "int2";  // aggressive: emulated accuracy must suffer
  cfg.injections_per_layer = 1;
  const auto aggressive = run_campaign(*f.model, f.batch, cfg);
  cfg.format_spec = "fp_e8m23";
  const auto exact = run_campaign(*f.model, f.batch, cfg);
  EXPECT_LE(aggressive.golden_accuracy, exact.golden_accuracy);
}

TEST(Campaign, NetworkMeanAggregatesLayers) {
  CampaignResult r;
  EXPECT_EQ(r.network_mean_delta_loss(), 0.0);
  LayerCampaignResult a, b;
  a.mean_delta_loss = 1.0;
  b.mean_delta_loss = 3.0;
  r.layers = {a, b};
  EXPECT_NEAR(r.network_mean_delta_loss(), 2.0, 1e-12);
}

}  // namespace
}  // namespace ge::core
