// ge::core::perf_gate (core/perf_gate.cpp): BenchReport JSON parsing and
// the median-ratio gate semantics the CI perf job relies on — pass on
// identical runs, fail on a uniform 2x slowdown, tolerate single noisy
// rows, report (never fail on) rows present on only one side.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/perf_gate.hpp"

namespace ge::core::perf_gate {
namespace {

std::string tmp_path(const std::string& name) {
  return "/tmp/ge_test_perf_gate_" + name + ".json";
}

// Write a BenchReport-shaped file (bench/harness.hpp format): header line
// opens the rows array, one row object per line with trailing commas.
std::string write_bench(const std::string& name, const std::string& bench,
                        const std::vector<std::string>& rows) {
  const std::string path = tmp_path(name);
  std::ofstream f(path, std::ios::trunc);
  f << "{\"bench\":\"" << bench << "\",\"rows\":[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    f << rows[i] << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "]}\n";
  return path;
}

std::string row(const std::string& name, double wall_ms,
                double trials_per_sec = 0.0) {
  char buf[256];
  if (trials_per_sec > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"wall_ms\":%.4f,\"iterations\":3,"
                  "\"trials_per_sec\":%.2f}",
                  name.c_str(), wall_ms, trials_per_sec);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"wall_ms\":%.4f,\"iterations\":3}",
                  name.c_str(), wall_ms);
  }
  return buf;
}

TEST(PerfGate, LoadsBenchNameRowsAndMetrics) {
  const std::string path = write_bench(
      "load", "fig3_runtime",
      {row("simple_cnn/int8", 12.5, 480.0), row("simple_cnn/fp_e5m10", 31.25)});
  const BenchFile f = load_bench_json(path);
  EXPECT_EQ(f.bench, "fig3_runtime");
  ASSERT_EQ(f.rows.size(), 2u);
  EXPECT_EQ(f.rows[0].name, "simple_cnn/int8");
  EXPECT_DOUBLE_EQ(f.rows[0].metrics.at("wall_ms"), 12.5);
  EXPECT_DOUBLE_EQ(f.rows[0].metrics.at("trials_per_sec"), 480.0);
  EXPECT_DOUBLE_EQ(f.rows[0].metrics.at("iterations"), 3.0);
  EXPECT_EQ(f.rows[1].name, "simple_cnn/fp_e5m10");
  EXPECT_EQ(f.rows[1].metrics.count("trials_per_sec"), 0u);
  std::remove(path.c_str());
}

TEST(PerfGate, MissingOrMalformedFileThrows) {
  EXPECT_THROW(load_bench_json("/tmp/ge_test_perf_gate_no_such.json"),
               std::runtime_error);
  const std::string path = tmp_path("malformed");
  {
    std::ofstream f(path, std::ios::trunc);
    f << "this is not a bench report\n";
  }
  EXPECT_THROW(load_bench_json(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PerfGate, IdenticalRunsPass) {
  const std::string base = write_bench(
      "ident_a", "fig3_runtime", {row("a", 10.0), row("b", 20.0)});
  const std::string cur = write_bench(
      "ident_b", "fig3_runtime", {row("a", 10.0), row("b", 20.0)});
  const GateResult r = compare_bench(load_bench_json(base),
                                     load_bench_json(cur), {"wall_ms"}, 0.15);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.median_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.worst_ratio, 1.0);
  EXPECT_TRUE(r.pass);
  std::remove(base.c_str());
  std::remove(cur.c_str());
}

TEST(PerfGate, UniformTwoXSlowdownFails) {
  const std::string base = write_bench(
      "slow_a", "fig3_runtime", {row("a", 10.0), row("b", 20.0), row("c", 5.0)});
  const std::string cur = write_bench(
      "slow_b", "fig3_runtime", {row("a", 20.0), row("b", 40.0), row("c", 10.0)});
  const GateResult r = compare_bench(load_bench_json(base),
                                     load_bench_json(cur), {"wall_ms"}, 0.15);
  EXPECT_DOUBLE_EQ(r.median_ratio, 2.0);
  EXPECT_FALSE(r.pass);
  std::remove(base.c_str());
  std::remove(cur.c_str());
}

TEST(PerfGate, SingleNoisyRowDoesNotFailTheMedian) {
  // One 3x outlier among five steady rows: median stays 1.0, gate passes.
  // This is the reason the gate statistic is the median, not the max.
  const std::string base =
      write_bench("noise_a", "fig7_prefix_cache",
                  {row("a", 10.0), row("b", 10.0), row("c", 10.0),
                   row("d", 10.0), row("e", 10.0)});
  const std::string cur =
      write_bench("noise_b", "fig7_prefix_cache",
                  {row("a", 10.0), row("b", 30.0), row("c", 10.0),
                   row("d", 10.0), row("e", 10.0)});
  const GateResult r = compare_bench(load_bench_json(base),
                                     load_bench_json(cur), {"wall_ms"}, 0.15);
  EXPECT_DOUBLE_EQ(r.median_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.worst_ratio, 3.0);
  EXPECT_TRUE(r.pass);
  std::remove(base.c_str());
  std::remove(cur.c_str());
}

TEST(PerfGate, ThresholdBoundaryIsInclusive) {
  // median ratio exactly 1 + threshold passes; just above fails
  const std::string base = write_bench("bound_a", "x", {row("a", 100.0)});
  const std::string at = write_bench("bound_b", "x", {row("a", 115.0)});
  const std::string over = write_bench("bound_c", "x", {row("a", 115.1)});
  const BenchFile b = load_bench_json(base);
  EXPECT_TRUE(compare_bench(b, load_bench_json(at), {"wall_ms"}, 0.15).pass);
  EXPECT_FALSE(compare_bench(b, load_bench_json(over), {"wall_ms"}, 0.15).pass);
  std::remove(base.c_str());
  std::remove(at.c_str());
  std::remove(over.c_str());
}

TEST(PerfGate, RowsOnOneSideAreReportedNotCompared) {
  const std::string base = write_bench(
      "miss_a", "x", {row("shared", 10.0), row("only_base", 1.0)});
  const std::string cur = write_bench(
      "miss_b", "x", {row("shared", 10.0), row("only_cur", 99.0)});
  const GateResult r = compare_bench(load_bench_json(base),
                                     load_bench_json(cur), {"wall_ms"}, 0.15);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].row, "shared");
  ASSERT_EQ(r.missing.size(), 2u);
  EXPECT_TRUE(r.pass);
  std::remove(base.c_str());
  std::remove(cur.c_str());
}

TEST(PerfGate, MultipleMetricsEachContributeARatio) {
  // wall_ms regresses 2x but trials_per_sec is only carried by one row;
  // metrics present on one side only are skipped per-cell.
  const std::string base = write_bench(
      "multi_a", "x", {row("a", 10.0, 100.0), row("b", 10.0)});
  const std::string cur = write_bench(
      "multi_b", "x", {row("a", 20.0, 50.0), row("b", 20.0)});
  const GateResult r = compare_bench(
      load_bench_json(base), load_bench_json(cur),
      {"wall_ms", "trials_per_sec"}, 0.15);
  // cells: a/wall 2.0, b/wall 2.0, a/tps 0.5 -> median 2.0
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(r.median_ratio, 2.0);
  EXPECT_FALSE(r.pass);
  std::remove(base.c_str());
  std::remove(cur.c_str());
}

TEST(PerfGate, ZeroBaselineComparesAsNeutral) {
  const std::string base = write_bench("zero_a", "x", {row("a", 0.0)});
  const std::string cur = write_bench("zero_b", "x", {row("a", 42.0)});
  const GateResult r = compare_bench(load_bench_json(base),
                                     load_bench_json(cur), {"wall_ms"}, 0.15);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0].ratio, 1.0);
  EXPECT_TRUE(r.pass);
  std::remove(base.c_str());
  std::remove(cur.c_str());
}

}  // namespace
}  // namespace ge::core::perf_gate
