// Kernel correctness: matmul family vs brute-force reference, im2col /
// col2im adjointness, pooling, softmax properties, reductions.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int64_t M = a.size(0), K = a.size(1), N = b.size(1);
  Tensor out({M, N});
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < K; ++k) acc += double(a[i * K + k]) * b[k * N + j];
      out[i * N + j] = static_cast<float>(acc);
    }
  }
  return out;
}

TEST(Elementwise, AddSubMulDiv) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_TRUE(ops::add(a, b).equals(Tensor({3}, {5, 7, 9})));
  EXPECT_TRUE(ops::sub(a, b).equals(Tensor({3}, {-3, -3, -3})));
  EXPECT_TRUE(ops::mul(a, b).equals(Tensor({3}, {4, 10, 18})));
  EXPECT_TRUE(ops::div(b, a).allclose(Tensor({3}, {4, 2.5f, 2})));
}

TEST(Elementwise, ShapeMismatchThrows) {
  EXPECT_THROW(ops::add(Tensor({2}), Tensor({3})), std::invalid_argument);
  EXPECT_THROW(ops::mul(Tensor({2, 1}), Tensor({2})), std::invalid_argument);
}

TEST(Elementwise, InplaceVariants) {
  Tensor a({2}, {1, 2});
  ops::add_inplace(a, Tensor({2}, {10, 20}));
  EXPECT_TRUE(a.equals(Tensor({2}, {11, 22})));
  ops::mul_scalar_inplace(a, 0.5f);
  EXPECT_TRUE(a.equals(Tensor({2}, {5.5f, 11})));
}

TEST(Elementwise, ScalarAndUnary) {
  Tensor a({2}, {-1, 4});
  EXPECT_TRUE(ops::add_scalar(a, 1).equals(Tensor({2}, {0, 5})));
  EXPECT_TRUE(ops::mul_scalar(a, -2).equals(Tensor({2}, {2, -8})));
  EXPECT_TRUE(ops::neg(a).equals(Tensor({2}, {1, -4})));
  EXPECT_TRUE(ops::abs(a).equals(Tensor({2}, {1, 4})));
  EXPECT_TRUE(ops::clamp(a, -0.5f, 2.0f).equals(Tensor({2}, {-0.5f, 2})));
  EXPECT_NEAR(ops::sqrt(Tensor({1}, {9}))[0], 3.0f, 1e-6f);
  EXPECT_NEAR(ops::exp(Tensor({1}, {0}))[0], 1.0f, 1e-6f);
  EXPECT_NEAR(ops::tanh(Tensor({1}, {0}))[0], 0.0f, 1e-6f);
}

TEST(Elementwise, MapAppliesFunction) {
  Tensor a({3}, {1, 2, 3});
  Tensor r = ops::map(a, [](float x) { return x * x; });
  EXPECT_TRUE(r.equals(Tensor({3}, {1, 4, 9})));
  ops::map_inplace(a, [](float x) { return -x; });
  EXPECT_TRUE(a.equals(Tensor({3}, {-1, -2, -3})));
}

TEST(Reductions, SumMeanMinMax) {
  Tensor a({4}, {1, -2, 3, 6});
  EXPECT_NEAR(ops::sum(a), 8.0f, 1e-6f);
  EXPECT_NEAR(ops::mean(a), 2.0f, 1e-6f);
  EXPECT_EQ(ops::min_value(a), -2.0f);
  EXPECT_EQ(ops::max_value(a), 6.0f);
  EXPECT_EQ(ops::max_abs(a), 6.0f);
}

TEST(Reductions, EmptyTensorThrows) {
  Tensor empty({0});
  EXPECT_THROW(ops::mean(empty), std::invalid_argument);
  EXPECT_THROW(ops::min_value(empty), std::invalid_argument);
}

TEST(Reductions, ArgmaxRows) {
  Tensor a({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto idx = ops::argmax_rows(a);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Matmul, MatchesNaiveReference) {
  Rng rng(3);
  Tensor a = rng.normal_tensor({7, 5});
  Tensor b = rng.normal_tensor({5, 9});
  EXPECT_TRUE(ops::matmul(a, b).allclose(naive_matmul(a, b), 1e-4f));
}

TEST(Matmul, BtVariantMatches) {
  Rng rng(4);
  Tensor a = rng.normal_tensor({6, 8});
  Tensor bt = rng.normal_tensor({5, 8});  // b = bt^T : (8, 5)
  Tensor b = ops::transpose2d(bt);
  EXPECT_TRUE(ops::matmul_bt(a, bt).allclose(naive_matmul(a, b), 1e-4f));
}

TEST(Matmul, AtVariantMatches) {
  Rng rng(5);
  Tensor at = rng.normal_tensor({8, 6});  // a = at^T : (6, 8)
  Tensor b = rng.normal_tensor({8, 5});
  Tensor a = ops::transpose2d(at);
  EXPECT_TRUE(ops::matmul_at(at, b).allclose(naive_matmul(a, b), 1e-4f));
}

TEST(Matmul, VariantsAgreeBitwise) {
  // All three variants share one accumulation policy (FP32 MAC, ascending
  // k), so expressing the same product through any of them must be exactly
  // equal — not merely allclose.
  Rng rng(7);
  Tensor a = rng.normal_tensor({9, 13});
  Tensor b = rng.normal_tensor({13, 11});
  const Tensor ref = ops::matmul(a, b);
  EXPECT_TRUE(ops::matmul_bt(a, ops::transpose2d(b)).equals(ref));
  EXPECT_TRUE(ops::matmul_at(ops::transpose2d(a), b).equals(ref));
}

TEST(Matmul, ShapeErrors) {
  EXPECT_THROW(ops::matmul(Tensor({2, 3}), Tensor({4, 2})),
               std::invalid_argument);
  EXPECT_THROW(ops::matmul_bt(Tensor({2, 3}), Tensor({4, 2})),
               std::invalid_argument);
  EXPECT_THROW(ops::matmul_at(Tensor({2, 3}), Tensor({4, 2})),
               std::invalid_argument);
  EXPECT_THROW(ops::matmul(Tensor({2}), Tensor({2, 2})),
               std::invalid_argument);
}

TEST(Transpose, RoundTripIsIdentity) {
  Rng rng(6);
  Tensor a = rng.normal_tensor({4, 7});
  EXPECT_TRUE(ops::transpose2d(ops::transpose2d(a)).equals(a));
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(7);
  Tensor a = rng.normal_tensor({5, 11}, 0.0f, 3.0f);
  Tensor s = ops::softmax_lastdim(a);
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < 11; ++c) sum += s[r * 11 + c];
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeInputs) {
  Tensor a({1, 3}, {1000.0f, 1001.0f, 999.0f});
  Tensor s = ops::softmax_lastdim(a);
  for (int64_t i = 0; i < 3; ++i) EXPECT_TRUE(std::isfinite(s[i]));
  EXPECT_GT(s[1], s[0]);
}

TEST(Softmax, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(8);
  Tensor a = rng.normal_tensor({3, 6});
  Tensor ls = ops::log_softmax_lastdim(a);
  Tensor s = ops::softmax_lastdim(a);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(ls[i], std::log(s[i]), 1e-5f);
  }
}

TEST(Conv, SpecOutputGeometry) {
  ops::Conv2dSpec s;
  s.kernel_h = s.kernel_w = 3;
  s.stride_h = s.stride_w = 2;
  s.pad_h = s.pad_w = 1;
  EXPECT_EQ(s.out_h(16), 8);
  EXPECT_EQ(s.out_w(7), 4);
}

TEST(Conv, Im2colIdentityKernel) {
  // 1x1 kernel, stride 1: im2col is a reordering of the input itself.
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  ops::Conv2dSpec s;
  s.kernel_h = s.kernel_w = 1;
  Tensor cols = ops::im2col(x, s);
  ASSERT_EQ(cols.size(0), 4);
  ASSERT_EQ(cols.size(1), 2);
  // row (oh=0, ow=0) holds channel values at that pixel: 1 and 5
  EXPECT_EQ(cols.at({0, 0}), 1.0f);
  EXPECT_EQ(cols.at({0, 1}), 5.0f);
  EXPECT_EQ(cols.at({3, 0}), 4.0f);
  EXPECT_EQ(cols.at({3, 1}), 8.0f);
}

TEST(Conv, Im2colZeroPadsBorders) {
  Tensor x = Tensor::ones({1, 1, 2, 2});
  ops::Conv2dSpec s;
  s.kernel_h = s.kernel_w = 3;
  s.pad_h = s.pad_w = 1;
  Tensor cols = ops::im2col(x, s);
  // top-left output: the 3x3 window has 5 zero (padded) and 4 one entries
  float sum = 0.0f;
  for (int64_t j = 0; j < 9; ++j) sum += cols.at({0, j});
  EXPECT_EQ(sum, 4.0f);
}

TEST(Conv, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property that makes Conv2d::backward correct.
  Rng rng(9);
  Tensor x = rng.normal_tensor({2, 3, 6, 6});
  ops::Conv2dSpec s;
  s.kernel_h = s.kernel_w = 3;
  s.stride_h = s.stride_w = 2;
  s.pad_h = s.pad_w = 1;
  Tensor cx = ops::im2col(x, s);
  Tensor y = rng.normal_tensor(cx.shape());
  Tensor cty = ops::col2im(y, x.shape(), s);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < cx.numel(); ++i) lhs += double(cx[i]) * y[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += double(x[i]) * cty[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Conv, Im2colRejectsBadInputs) {
  ops::Conv2dSpec s;
  EXPECT_THROW(ops::im2col(Tensor({2, 3}), s), std::invalid_argument);
  s.kernel_h = s.kernel_w = 5;
  EXPECT_THROW(ops::im2col(Tensor({1, 1, 3, 3}), s), std::invalid_argument);
}

TEST(Conv, Im2colIsLinear) {
  // im2col(a x + b y) == a im2col(x) + b im2col(y): the property that
  // makes conv-as-GEMM legal.
  Rng rng(40);
  Tensor x = rng.normal_tensor({1, 2, 5, 5});
  Tensor y = rng.normal_tensor({1, 2, 5, 5});
  ops::Conv2dSpec s;
  s.kernel_h = s.kernel_w = 3;
  s.pad_h = s.pad_w = 1;
  Tensor lhs = ops::im2col(
      ops::add(ops::mul_scalar(x, 2.0f), ops::mul_scalar(y, -3.0f)), s);
  Tensor rhs = ops::add(ops::mul_scalar(ops::im2col(x, s), 2.0f),
                        ops::mul_scalar(ops::im2col(y, s), -3.0f));
  EXPECT_TRUE(lhs.allclose(rhs, 1e-4f));
}

TEST(Matmul, DistributesOverAddition) {
  Rng rng(41);
  Tensor a = rng.normal_tensor({4, 6});
  Tensor b = rng.normal_tensor({6, 5});
  Tensor c = rng.normal_tensor({6, 5});
  Tensor lhs = ops::matmul(a, ops::add(b, c));
  Tensor rhs = ops::add(ops::matmul(a, b), ops::matmul(a, c));
  EXPECT_TRUE(lhs.allclose(rhs, 1e-3f));
}

TEST(Matmul, TransposeVariantsAgreeWithExplicitTranspose) {
  Rng rng(42);
  Tensor a = rng.normal_tensor({5, 7});
  Tensor b = rng.normal_tensor({7, 4});
  const Tensor ref = ops::matmul(a, b);
  EXPECT_TRUE(ops::matmul_bt(a, ops::transpose2d(b)).allclose(ref, 1e-4f));
  EXPECT_TRUE(ops::matmul_at(ops::transpose2d(a), b).allclose(ref, 1e-4f));
}

TEST(Softmax, InvariantToRowShift) {
  Rng rng(43);
  Tensor a = rng.normal_tensor({3, 8});
  Tensor shifted = ops::add_scalar(a, 42.0f);
  EXPECT_TRUE(ops::softmax_lastdim(a).allclose(
      ops::softmax_lastdim(shifted), 1e-5f));
}

TEST(Pooling, MaxPoolPicksWindowMax) {
  Tensor x({1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 1});
  ops::Conv2dSpec s;
  s.kernel_h = s.kernel_w = 2;
  s.stride_h = s.stride_w = 2;
  Tensor y = ops::maxpool2d(x, s);
  ASSERT_EQ(y.numel(), 2);
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 8.0f);
}

TEST(Pooling, MaxPoolArgmaxIndexesInput) {
  Tensor x({1, 1, 2, 2}, {1, 9, 3, 2});
  ops::Conv2dSpec s;
  s.kernel_h = s.kernel_w = 2;
  s.stride_h = s.stride_w = 2;
  std::vector<int64_t> argmax;
  Tensor y = ops::maxpool2d(x, s, &argmax);
  ASSERT_EQ(argmax.size(), 1u);
  EXPECT_EQ(argmax[0], 1);
}

TEST(Pooling, AvgPoolAveragesWindow) {
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 6});
  ops::Conv2dSpec s;
  s.kernel_h = s.kernel_w = 2;
  s.stride_h = s.stride_w = 2;
  EXPECT_NEAR(ops::avgpool2d(x, s)[0], 3.0f, 1e-6f);
}

TEST(Pooling, GlobalAvgPoolPerChannel) {
  Tensor x({1, 2, 2, 2}, {1, 1, 1, 1, 2, 2, 2, 10});
  Tensor y = ops::global_avgpool(x);
  ASSERT_EQ(y.numel(), 2);
  EXPECT_NEAR(y[0], 1.0f, 1e-6f);
  EXPECT_NEAR(y[1], 4.0f, 1e-6f);
}

}  // namespace
}  // namespace ge
