// Module framework: hooks (the GoldenEye interception mechanism), module
// tree traversal, parameter bookkeeping, weight persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "models/mlp.hpp"
#include "nn/activation.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor_ops.hpp"

namespace ge::nn {
namespace {

TEST(Hooks, ForwardHookSeesAndMutatesOutput) {
  Rng rng(1);
  Linear lin(4, 2, rng);
  int fired = 0;
  lin.add_forward_hook([&fired](Module& m, Tensor& y) {
    ++fired;
    EXPECT_EQ(m.kind(), "Linear");
    y.fill(7.0f);
  });
  Tensor out = lin(Tensor({1, 4}));
  EXPECT_EQ(fired, 1);
  for (float v : out.flat()) EXPECT_EQ(v, 7.0f);
}

TEST(Hooks, PreHookRunsBeforeForward) {
  Rng rng(2);
  Linear lin(2, 2, rng);
  lin.weight().value.fill(1.0f);
  lin.bias()->value.fill(0.0f);
  lin.add_forward_pre_hook([](Module&, Tensor& x) { x.fill(1.0f); });
  Tensor out = lin(Tensor({1, 2}));  // zeros replaced by ones pre-forward
  EXPECT_NEAR(out[0], 2.0f, 1e-6f);
}

TEST(Hooks, RunInRegistrationOrder) {
  Rng rng(3);
  Linear lin(2, 2, rng);
  std::vector<int> order;
  lin.add_forward_hook([&order](Module&, Tensor&) { order.push_back(1); });
  lin.add_forward_hook([&order](Module&, Tensor&) { order.push_back(2); });
  (void)lin(Tensor({1, 2}));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Hooks, RemoveByHandleIsIdempotent) {
  Rng rng(4);
  Linear lin(2, 2, rng);
  int fired = 0;
  const auto h = lin.add_forward_hook([&fired](Module&, Tensor&) { ++fired; });
  lin.remove_hook(h);
  lin.remove_hook(h);  // second removal: no-op
  (void)lin(Tensor({1, 2}));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(lin.hook_count(), 0);
}

TEST(Hooks, ClearRemovesEverything) {
  Rng rng(5);
  Linear lin(2, 2, rng);
  lin.add_forward_hook([](Module&, Tensor&) {});
  lin.add_forward_pre_hook([](Module&, Tensor&) {});
  EXPECT_EQ(lin.hook_count(), 2);
  lin.clear_hooks();
  EXPECT_EQ(lin.hook_count(), 0);
}

TEST(Hooks, FireAtEveryNestedLayer) {
  Rng rng(6);
  Sequential seq;
  seq.emplace<Linear>(4, 4, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(4, 2, rng);
  int fired = 0;
  for (auto& [path, mod] : seq.named_modules()) {
    if (mod->kind() == "Linear") {
      mod->add_forward_hook([&fired](Module&, Tensor&) { ++fired; });
    }
  }
  (void)seq(Tensor({1, 4}));
  EXPECT_EQ(fired, 2);
}

TEST(ModuleTree, NamedModulesUsesDottedPaths) {
  Rng rng(7);
  models::Mlp mlp(8, {4}, 2, rng);
  std::vector<std::string> paths;
  for (auto& [p, m] : mlp.named_modules()) paths.push_back(p);
  EXPECT_EQ(paths[0], "");  // the root itself
  EXPECT_NE(std::find(paths.begin(), paths.end(), "body.1"), paths.end());
}

TEST(ModuleTree, FindModuleByPath) {
  Rng rng(8);
  models::Mlp mlp(8, {4}, 2, rng);
  Module* m = mlp.find_module("body.1");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind(), "Linear");
  EXPECT_EQ(mlp.find_module("nope"), nullptr);
}

TEST(Parameters, CountsAndNames) {
  Rng rng(9);
  models::Mlp mlp(8, {4}, 2, rng);
  // body.1: 8*4+4, body.3: 4*2+2
  EXPECT_EQ(mlp.parameter_count(), 8 * 4 + 4 + 4 * 2 + 2);
  bool found = false;
  for (auto& [name, p] : mlp.named_parameters()) {
    if (name == "body.1.weight") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Parameters, ZeroGradClearsAll) {
  Rng rng(10);
  Linear lin(3, 3, rng);
  lin.weight().grad.fill(5.0f);
  lin.zero_grad();
  for (float v : lin.weight().grad.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(TrainMode, PropagatesToChildren) {
  Rng rng(11);
  Sequential seq;
  auto& lin = seq.emplace<Linear>(2, 2, rng);
  EXPECT_FALSE(lin.is_training());
  seq.train(true);
  EXPECT_TRUE(lin.is_training());
  seq.eval();
  EXPECT_FALSE(lin.is_training());
}

TEST(Backward, DefaultThrowsForUnimplementedLayers) {
  class NoBackward : public Module {
   public:
    NoBackward() : Module("NoBackward") {}
    Tensor forward(const Tensor& x) override { return x; }
  };
  NoBackward m;
  EXPECT_THROW(m.backward(Tensor({1})), std::logic_error);
}

TEST(Persistence, SaveLoadRoundTripsWeights) {
  Rng rng(12);
  models::Mlp a(8, {4}, 2, rng);
  Rng rng2(999);
  models::Mlp b(8, {4}, 2, rng2);
  const std::string path = "/tmp/ge_test_weights.gew";
  a.save_weights(path);
  b.load_weights(path);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value.equals(pb[i]->value));
  }
  std::filesystem::remove(path);
}

TEST(Persistence, LoadRejectsWrongArchitecture) {
  Rng rng(13);
  models::Mlp a(8, {4}, 2, rng);
  models::Mlp wrong(8, {16}, 2, rng);
  const std::string path = "/tmp/ge_test_weights2.gew";
  a.save_weights(path);
  EXPECT_THROW(wrong.load_weights(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Persistence, LoadRejectsMissingFile) {
  Rng rng(14);
  models::Mlp a(8, {4}, 2, rng);
  EXPECT_THROW(a.load_weights("/tmp/definitely_missing.gew"),
               std::runtime_error);
}

TEST(Persistence, LoadRejectsGarbageFile) {
  const std::string path = "/tmp/ge_garbage.gew";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a weight file", f);
  std::fclose(f);
  Rng rng(15);
  models::Mlp a(8, {4}, 2, rng);
  EXPECT_THROW(a.load_weights(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Buffers, NamedBuffersMirrorsNamedParameters) {
  // The name-keyed buffer enumeration ge::io state dicts round-trip
  // through: local buffer names, depth-first, disjoint from parameters.
  BatchNorm2d bn(3);
  const auto bufs = bn.named_buffers();
  ASSERT_EQ(bufs.size(), 2u);
  EXPECT_EQ(bufs[0].first, "running_mean");
  EXPECT_EQ(bufs[1].first, "running_var");
  for (const auto& [name, param] : bn.named_parameters()) {
    EXPECT_NE(name, "running_mean");
    EXPECT_NE(name, "running_var");
    (void)param;
  }
  // Buffer-free modules enumerate empty, not throwing.
  Rng rng(16);
  models::Mlp mlp(8, {4}, 2, rng);
  EXPECT_TRUE(mlp.named_buffers().empty());
}

}  // namespace
}  // namespace ge::nn
