// BfpFormat conformance: block structure, shared-exponent metadata, and
// the "one metadata flip = multi-bit data flip" behaviour the paper builds
// its §IV-C analysis on.
#include <gtest/gtest.h>

#include <cmath>

#include "formats/bfp.hpp"
#include "tensor/rng.hpp"

namespace ge::fmt {
namespace {

TEST(Bfp, RejectsBadParameters) {
  EXPECT_THROW(BfpFormat(1, 5, 16), std::invalid_argument);
  EXPECT_THROW(BfpFormat(11, 5, 16), std::invalid_argument);
  EXPECT_THROW(BfpFormat(5, 0, 16), std::invalid_argument);
  EXPECT_THROW(BfpFormat(5, 24, 16), std::invalid_argument);
  EXPECT_THROW(BfpFormat(5, 5, -1), std::invalid_argument);
}

TEST(Bfp, PerElementWidthExcludesSharedExponent) {
  BfpFormat f(8, 7, 16);
  EXPECT_EQ(f.bit_width(), 8);  // 1 sign + 7 mantissa; exponent amortised
  EXPECT_EQ(f.spec(), "bfp_e8m7_b16");
}

TEST(Bfp, SharedExponentIsBlockMax) {
  BfpFormat f(5, 5, 4);
  // two blocks: max |.| = 6 (exp 2) and 0.4 (exp -2)
  Tensor t({8}, {1.0f, -6.0f, 2.0f, 0.5f, 0.1f, 0.4f, -0.2f, 0.3f});
  (void)f.real_to_format_tensor(t);
  ASSERT_EQ(f.num_blocks(), 2);
  EXPECT_EQ(f.shared_exponent(0), 2);
  EXPECT_EQ(f.shared_exponent(1), -2);
}

TEST(Bfp, BlockSizeZeroMeansWholeTensor) {
  BfpFormat f(5, 5, 0);
  Tensor t({6}, {1, 2, 3, 4, 5, 100});
  (void)f.real_to_format_tensor(t);
  EXPECT_EQ(f.num_blocks(), 1);
  EXPECT_EQ(f.shared_exponent(0), 6);  // floor(log2(100))
}

TEST(Bfp, LargeValuesKeepPrecisionSmallOnesRoundToZero) {
  // The paper's §IV-B observation: with a large shared block, low
  // magnitude numbers lose resolution (rounded to zero).
  BfpFormat f(5, 3, 0);  // 3 mantissa bits, whole-tensor block
  Tensor t({3}, {100.0f, 1.0f, 0.001f});
  Tensor q = f.real_to_format_tensor(t);
  EXPECT_NEAR(q[0], 100.0f, 100.0f / 8);  // near max: representable
  EXPECT_EQ(q[2], 0.0f);                  // tiny vs block max: flushed
}

TEST(Bfp, QuantizedValuesLieOnBlockGrid) {
  BfpFormat f(5, 5, 8);
  Rng rng(21);
  Tensor t = rng.normal_tensor({64}, 0.0f, 3.0f);
  Tensor q = f.real_to_format_tensor(t);
  for (int64_t i = 0; i < t.numel(); ++i) {
    const int se = f.shared_exponent(i / 8);
    const float step = std::ldexp(1.0f, se + 1 - 5);
    const float code = q[i] / step;
    EXPECT_NEAR(code, std::nearbyintf(code), 1e-3f);
    EXPECT_LE(std::fabs(code), 31.0f);  // 2^5 - 1
  }
}

TEST(Bfp, ElementCodingRoundTripsWithBlockContext) {
  BfpFormat f(5, 5, 8);
  Rng rng(22);
  Tensor t = rng.normal_tensor({32}, 0.0f, 2.0f);
  Tensor q = f.real_to_format_tensor(t);
  for (int64_t i = 0; i < t.numel(); ++i) {
    const BitString b = f.real_to_format_at(q[i], i);
    EXPECT_EQ(f.format_to_real_at(b, i), q[i]);
  }
}

TEST(Bfp, ContextFreeScalarUsesExponentZero) {
  BfpFormat f(5, 5, 8);
  // value 1.0 with se=0: step = 2^(1-5) = 1/16, code 16
  const BitString b = f.real_to_format(1.0f);
  EXPECT_EQ(b.value() & 0x1Fu, 16u);
  EXPECT_EQ(f.format_to_real(b), 1.0f);
}

TEST(Bfp, MetadataFieldsDescribeRegisters) {
  BfpFormat f(5, 5, 4);
  Tensor t = Tensor::ones({12});
  (void)f.real_to_format_tensor(t);
  const auto fields = f.metadata_fields();
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].name, "shared_exponent");
  EXPECT_EQ(fields[0].bit_width, 5);
  EXPECT_EQ(fields[0].count, 3);  // ceil(12 / 4)
}

TEST(Bfp, MetadataFlipScalesWholeBlockOnly) {
  // THE paper's headline effect: one shared-exponent bit flip rescales
  // every value of its block (multi-bit-flip equivalent), leaving other
  // blocks untouched.
  BfpFormat f(5, 5, 4);
  Tensor t({8}, {1.0f, 0.5f, -0.25f, 0.75f, 2.0f, 1.5f, -1.0f, 0.5f});
  Tensor q = f.real_to_format_tensor(t);
  BitString reg = f.read_metadata("shared_exponent", 0);
  reg.flip_bit(0);  // LSB of block 0's exponent: scale by 2 or 1/2
  f.write_metadata("shared_exponent", 0, reg);
  Tensor corrupted = f.decode_last_tensor();
  const float ratio = corrupted[0] / q[0];
  EXPECT_TRUE(std::fabs(ratio - 2.0f) < 1e-5f ||
              std::fabs(ratio - 0.5f) < 1e-5f);
  for (int64_t i = 0; i < 4; ++i) {
    if (q[i] != 0.0f) EXPECT_NEAR(corrupted[i] / q[i], ratio, 1e-5f);
  }
  for (int64_t i = 4; i < 8; ++i) {
    EXPECT_EQ(corrupted[i], q[i]);  // block 1 untouched
  }
}

TEST(Bfp, MetadataHighBitFlipIsCatastrophic) {
  BfpFormat f(5, 5, 0);
  Tensor t({4}, {1.0f, 0.5f, 0.25f, 0.75f});
  Tensor q = f.real_to_format_tensor(t);
  BitString reg = f.read_metadata("shared_exponent", 0);
  reg.flip_bit(4);  // MSB of the 5-bit exponent: scale by 2^16
  f.write_metadata("shared_exponent", 0, reg);
  Tensor corrupted = f.decode_last_tensor();
  const float ratio = std::fabs(corrupted[0] / q[0]);
  EXPECT_TRUE(ratio > 1e4f || ratio < 1e-4f);
}

TEST(Bfp, MetadataErrorsAreChecked) {
  BfpFormat f(5, 5, 4);
  EXPECT_THROW(f.read_metadata("shared_exponent", 0), std::logic_error);
  Tensor t = Tensor::ones({4});
  (void)f.real_to_format_tensor(t);
  EXPECT_THROW(f.read_metadata("nope", 0), std::logic_error);
  EXPECT_THROW(f.read_metadata("shared_exponent", 5), std::logic_error);
  EXPECT_THROW(f.write_metadata("shared_exponent", 0, BitString(0, 3)),
               std::logic_error);
}

TEST(Bfp, ScalarContextRequiresConversion) {
  BfpFormat f(5, 5, 4);
  EXPECT_THROW(f.real_to_format_at(1.0f, 0), std::logic_error);
  EXPECT_THROW(f.decode_last_tensor(), std::logic_error);
}

TEST(Bfp, SignBitFlipNegatesValue) {
  BfpFormat f(5, 5, 4);
  Tensor t({4}, {1.0f, 0.5f, 0.25f, 0.75f});
  Tensor q = f.real_to_format_tensor(t);
  BitString b = f.real_to_format_at(q[0], 0);
  b.flip_bit(5);  // sign bit (above 5 mantissa bits)
  EXPECT_EQ(f.format_to_real_at(b, 0), -q[0]);
}

TEST(Bfp, DynamicRange) {
  BfpFormat f(5, 5, 16);
  // se range: [-15, 16]; max = 31 * 2^(16+1-5); min = 2^(-15+1-5)
  EXPECT_EQ(f.abs_max(), 31.0 * std::ldexp(1.0, 12));
  EXPECT_EQ(f.abs_min(), std::ldexp(1.0, -19));
  EXPECT_GT(f.dynamic_range_db(), 0.0);
}

class BfpGrid
    : public ::testing::TestWithParam<std::tuple<int, int, int64_t>> {};

TEST_P(BfpGrid, IdempotentAndBounded) {
  const auto [e, m, block] = GetParam();
  BfpFormat f(e, m, block);
  Rng rng(80 + e * 7 + m);
  Tensor t = rng.normal_tensor({96}, 0.0f, 10.0f);
  Tensor q = f.real_to_format_tensor(t);
  // idempotence: re-quantising the quantised tensor is a fixed point
  BfpFormat f2(e, m, block);
  Tensor q2 = f2.real_to_format_tensor(q);
  EXPECT_TRUE(q2.allclose(q, 1e-6f));
  // every element bounded by its block's max
  const int64_t eb = (block == 0) ? 96 : block;
  for (int64_t i = 0; i < q.numel(); ++i) {
    const int se = f.shared_exponent(i / eb);
    EXPECT_LE(std::fabs(q[i]), std::ldexp(1.0f, se + 1) + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BfpGrid,
    ::testing::Values(std::tuple{5, 5, int64_t{16}},
                      std::tuple{8, 7, int64_t{16}},
                      std::tuple{5, 3, int64_t{8}},
                      std::tuple{4, 5, int64_t{32}},
                      std::tuple{5, 5, int64_t{0}},
                      std::tuple{2, 2, int64_t{4}}),
    [](const auto& info) {
      return "e" + std::to_string(std::get<0>(info.param)) + "m" +
             std::to_string(std::get<1>(info.param)) + "b" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace ge::fmt
