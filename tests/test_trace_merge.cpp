// core/trace_merge unit tests over hand-crafted --trace files: clock
// rebasing across process epochs, byte-identical output under any input
// ordering, per-trace attribution arithmetic, and error diagnosis for
// files that are not trace outputs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/trace_merge.hpp"

namespace ge::core {
namespace {

std::string tmp_path(const std::string& name) {
  return "/tmp/ge_test_trace_merge_" + name + ".json";
}

std::string write_file(const std::string& name, const std::string& content) {
  const std::string path = tmp_path(name);
  std::ofstream f(path);
  f << content;
  return path;
}

// A --trace file as obs::chrome_trace_json lays it out: one event per
// line, a meta record carrying the process label and unix epoch, spans
// with optional propagated hex ids.
std::string submit_trace() {
  return "{\"traceEvents\":[\n"
         "{\"name\":\"goldeneye_trace_meta\",\"cat\":\"meta\",\"ph\":\"M\","
         "\"pid\":1,\"tid\":0,\"process_label\":\"submit\","
         "\"epoch_unix_ns\":1000000000000},\n"
         "{\"name\":\"submit(fp_e4m3)\",\"cat\":\"net\",\"ph\":\"X\","
         "\"pid\":1,\"tid\":1,\"ts\":100.000,\"dur\":5000.000,"
         "\"trace_id\":\"0000000000000001\",\"span_id\":\"00000000000000aa\","
         "\"parent_span_id\":\"0000000000000000\"},\n"
         "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string serve_trace() {
  // Epoch 500 us after the submit process; spans parented under the
  // propagated submit root (aa).
  return "{\"traceEvents\":[\n"
         "{\"name\":\"goldeneye_trace_meta\",\"cat\":\"meta\",\"ph\":\"M\","
         "\"pid\":1,\"tid\":0,\"process_label\":\"serve\","
         "\"epoch_unix_ns\":1000000500000},\n"
         "{\"name\":\"queue_wait(campaign_1)\",\"cat\":\"net\",\"ph\":\"X\","
         "\"pid\":1,\"tid\":2,\"ts\":10.000,\"dur\":50.000,"
         "\"trace_id\":\"0000000000000001\",\"span_id\":\"00000000000000bb\","
         "\"parent_span_id\":\"00000000000000aa\"},\n"
         "{\"name\":\"execute(campaign_1)\",\"cat\":\"net\",\"ph\":\"X\","
         "\"pid\":1,\"tid\":2,\"ts\":60.000,\"dur\":4000.000,"
         "\"trace_id\":\"0000000000000001\",\"span_id\":\"00000000000000cc\","
         "\"parent_span_id\":\"00000000000000aa\"},\n"
         "{\"name\":\"lease_execute(0-7)\",\"cat\":\"net\",\"ph\":\"X\","
         "\"pid\":1,\"tid\":2,\"ts\":70.000,\"dur\":1000.000,"
         "\"trace_id\":\"0000000000000001\",\"span_id\":\"00000000000000dd\","
         "\"parent_span_id\":\"00000000000000cc\"},\n"
         "{\"name\":\"untraced_background\",\"cat\":\"io\",\"ph\":\"X\","
         "\"pid\":1,\"tid\":3,\"ts\":5.000,\"dur\":2.000},\n"
         "],\"displayTimeUnit\":\"ms\"}\n";
}

TEST(TraceMerge, OutputIsByteIdenticalUnderAnyInputOrdering) {
  const std::string a = write_file("order_a", submit_trace());
  const std::string b = write_file("order_b", serve_trace());

  const TraceMergeResult fwd = merge_trace_files({a, b});
  const TraceMergeResult rev = merge_trace_files({b, a});
  EXPECT_EQ(fwd.chrome_json, rev.chrome_json);
  EXPECT_EQ(fwd.attribution, rev.attribution);
  EXPECT_EQ(fwd.collapsed, rev.collapsed);

  // Process order is content-determined (label, epoch, hash) — "serve"
  // sorts before "submit" regardless of argv order.
  ASSERT_EQ(fwd.processes.size(), 2u);
  EXPECT_EQ(fwd.processes[0].label, "serve");
  EXPECT_EQ(fwd.processes[1].label, "submit");
  EXPECT_EQ(rev.processes[0].label, "serve");

  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TraceMerge, EpochRebasePutsEventsOnOneSharedAxis) {
  const std::string a = write_file("rebase_a", submit_trace());
  const std::string b = write_file("rebase_b", serve_trace());
  const TraceMergeResult r = merge_trace_files({a, b});

  EXPECT_EQ(r.event_count, 5);
  EXPECT_EQ(r.trace_count, 1);
  // Earliest wall-clock event (the submit root: epoch base + 100 us)
  // lands at ts 0; the serve process's queue_wait sits 500 us of epoch
  // skew plus 10 us of local offset later, minus the 100 us base shift.
  EXPECT_NE(r.chrome_json.find("\"name\":\"submit(fp_e4m3)\",\"cat\":\"net\","
                               "\"ph\":\"X\",\"pid\":2,\"tid\":1,"
                               "\"ts\":0.000"),
            std::string::npos)
      << r.chrome_json;
  EXPECT_NE(r.chrome_json.find("\"name\":\"queue_wait(campaign_1)\","
                               "\"cat\":\"net\",\"ph\":\"X\",\"pid\":1,"
                               "\"tid\":2,\"ts\":410.000"),
            std::string::npos)
      << r.chrome_json;
  // Propagated ids survive as 16-digit hex strings; the untraced span
  // carries none.
  EXPECT_NE(r.chrome_json.find("\"trace_id\":\"0000000000000001\""),
            std::string::npos);
  EXPECT_NE(r.chrome_json.find("\"name\":\"untraced_background\",\"cat\":"
                               "\"io\",\"ph\":\"X\",\"pid\":1,\"tid\":3,"
                               "\"ts\":405.000,\"dur\":2.000}"),
            std::string::npos)
      << r.chrome_json;

  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TraceMerge, AttributionPartitionsRootIntoQueueExecuteStreamBack) {
  const std::string a = write_file("attr_a", submit_trace());
  const std::string b = write_file("attr_b", serve_trace());
  const TraceMergeResult r = merge_trace_files({a, b});

  // One trace, rooted at the submit client. root 5 ms; queue 0.05 ms;
  // execute 4 ms; one lease worth 1 ms; stream_back = 5 - 0.05 - 4.
  EXPECT_NE(r.attribution.find("trace 0000000000000001  (4 spans)"),
            std::string::npos)
      << r.attribution;
  EXPECT_NE(r.attribution.find(
                "root              5.000 ms  submit(fp_e4m3) @submit"),
            std::string::npos)
      << r.attribution;
  EXPECT_NE(r.attribution.find("queue_wait        0.050 ms"),
            std::string::npos);
  EXPECT_NE(r.attribution.find("execute           4.000 ms"),
            std::string::npos);
  EXPECT_NE(
      r.attribution.find("leases            1.000 ms  across 1 lease(s)"),
      std::string::npos)
      << r.attribution;
  EXPECT_NE(r.attribution.find("stream_back       0.950 ms"),
            std::string::npos);

  // Collapsed stacks reconstruct the serve-side nesting across the
  // process-unique tid remap.
  EXPECT_NE(r.collapsed.find("execute(campaign_1);lease_execute(0-7)"),
            std::string::npos)
      << r.collapsed;

  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TraceMerge, RejectsFilesWithoutTraceMeta) {
  const std::string p =
      write_file("not_a_trace", "{\"traceEvents\":[\n],\"ok\":1}\n");
  EXPECT_THROW(merge_trace_files({p}), std::runtime_error);
  std::remove(p.c_str());

  EXPECT_THROW(merge_trace_files({tmp_path("missing")}), std::runtime_error);
  EXPECT_THROW(merge_trace_files({}), std::runtime_error);
}

}  // namespace
}  // namespace ge::core
