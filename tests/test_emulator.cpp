// Emulator: hook attachment, weight quantisation + exact restore, FP32
// emulation equivalence (the paper's §III-C validation against
// non-emulated inference).
#include <gtest/gtest.h>

#include "core/emulator.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"

namespace ge::core {
namespace {

struct Fixture {
  data::SyntheticVision data;
  std::unique_ptr<nn::Module> model;
  data::Batch batch;

  Fixture()
      : data([] {
          data::SyntheticVisionConfig cfg;
          cfg.train_count = 16;
          cfg.test_count = 64;
          return cfg;
        }()),
        model(models::make_model("simple_cnn", data.config(), 3)),
        batch(data::take(data.test(), 0, 16)) {
    model->eval();
  }
};

TEST(Emulator, RejectsUnknownSpec) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "nonsense";
  EXPECT_THROW(Emulator(*f.model, cfg), std::invalid_argument);
}

TEST(Emulator, InstrumentsConvAndLinearByDefault) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  // SimpleCnn: 3 convs + 1 linear
  EXPECT_EQ(emu.sites().size(), 4u);
  for (const auto& s : emu.sites()) {
    EXPECT_TRUE(s.module->kind() == "Conv2d" || s.module->kind() == "Linear");
  }
  EXPECT_NE(emu.site(emu.sites()[0].path), nullptr);
  EXPECT_EQ(emu.site("bogus.path"), nullptr);
}

TEST(Emulator, LayerKindSelectionIsConfigurable) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  cfg.layer_kinds = {"Linear"};
  Emulator emu(*f.model, cfg);
  EXPECT_EQ(emu.sites().size(), 1u);
}

TEST(Emulator, Fp32EmulationMatchesNative) {
  // Emulating the fabric's own format must be a no-op (§III-C validation).
  Fixture f;
  const Tensor native = (*f.model)(f.batch.images);
  {
    EmulatorConfig cfg;
    cfg.format_spec = "fp_e8m23";
    Emulator emu(*f.model, cfg);
    const Tensor emulated = (*f.model)(f.batch.images);
    EXPECT_TRUE(emulated.equals(native));
  }
}

TEST(Emulator, DetachRestoresWeightsBitExact) {
  Fixture f;
  std::vector<Tensor> originals;
  for (auto* p : f.model->parameters()) originals.push_back(p->value);
  {
    EmulatorConfig cfg;
    cfg.format_spec = "int8";
    Emulator emu(*f.model, cfg);
    // weights are actually quantised while attached
    bool changed = false;
    for (size_t i = 0; i < originals.size(); ++i) {
      if (!f.model->parameters()[i]->value.equals(originals[i])) {
        changed = true;
      }
    }
    EXPECT_TRUE(changed);
  }
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_TRUE(f.model->parameters()[i]->value.equals(originals[i]));
  }
}

TEST(Emulator, DetachRemovesHooks) {
  Fixture f;
  {
    EmulatorConfig cfg;
    cfg.format_spec = "fp_e4m3";
    Emulator emu(*f.model, cfg);
  }
  for (auto& [p, m] : f.model->named_modules()) {
    EXPECT_EQ(m->hook_count(), 0) << p;
  }
}

TEST(Emulator, QuantizationActuallyChangesActivations) {
  Fixture f;
  const Tensor native = (*f.model)(f.batch.images);
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e2m1";  // aggressive 4-bit float
  Emulator emu(*f.model, cfg);
  const Tensor emulated = (*f.model)(f.batch.images);
  EXPECT_FALSE(emulated.allclose(native, 1e-3f));
}

TEST(Emulator, WeightOnlyAndActivationOnlyModes) {
  Fixture f;
  const Tensor native = (*f.model)(f.batch.images);
  Tensor weight_only, act_only;
  {
    EmulatorConfig cfg;
    cfg.format_spec = "int4";
    cfg.quantize_activations = false;
    Emulator emu(*f.model, cfg);
    weight_only = (*f.model)(f.batch.images);
  }
  {
    EmulatorConfig cfg;
    cfg.format_spec = "int4";
    cfg.quantize_weights = false;
    Emulator emu(*f.model, cfg);
    act_only = (*f.model)(f.batch.images);
  }
  EXPECT_FALSE(weight_only.equals(native));
  EXPECT_FALSE(act_only.equals(native));
  EXPECT_FALSE(weight_only.equals(act_only));
}

TEST(Emulator, PostQuantCallbackFiresPerSite) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  int fired = 0;
  emu.set_post_quant([&fired](LayerSite&, Tensor&) { ++fired; });
  (void)(*f.model)(f.batch.images);
  EXPECT_EQ(fired, 4);
  emu.clear_post_quant();
  (void)(*f.model)(f.batch.images);
  EXPECT_EQ(fired, 4);
}

TEST(Emulator, RestoreWeightsRequantizesOneSite) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "int8";
  Emulator emu(*f.model, cfg);
  LayerSite& site = emu.sites()[0];
  nn::Parameter* w = site.module->local_parameters()[0];
  const Tensor quantised = w->value;
  w->value.fill(123.0f);  // corrupt
  emu.restore_weights(site.path);
  EXPECT_TRUE(w->value.equals(quantised));
  EXPECT_THROW(emu.restore_weights("bogus"), std::invalid_argument);
}

TEST(Emulator, EmulatedAccuracyHelper) {
  Fixture f;
  const float native = emulated_accuracy(*f.model, f.batch.images,
                                         f.batch.labels, "native");
  const float fp32 = emulated_accuracy(*f.model, f.batch.images,
                                       f.batch.labels, "fp_e8m23");
  EXPECT_EQ(native, fp32);
}

TEST(Emulator, PerLayerSpecsGiveMixedFormatEmulation) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "int8";
  {
    // discover the classifier head's path
    Emulator probe(*f.model, cfg);
    cfg.per_layer_specs[probe.sites().back().path] = "fp_e5m10";
  }
  Emulator emu(*f.model, cfg);
  EXPECT_EQ(emu.sites().back().act_format->spec(), "fp_e5m10");
  EXPECT_EQ(emu.sites().front().act_format->spec(), "int8");
  // runs end to end
  (void)(*f.model)(f.batch.images);
}

TEST(Emulator, PerLayerSpecsAreValidated) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "int8";
  cfg.per_layer_specs["whatever"] = "not_a_format";
  EXPECT_THROW(Emulator(*f.model, cfg), std::invalid_argument);
}

TEST(Emulator, MixedFormatChangesOnlyTargetedLayerBehaviour) {
  Fixture f;
  // all-FP16 emulation vs FP16-with-int2-head: only the head differs
  EmulatorConfig base;
  base.format_spec = "fp_e5m10";
  Tensor uniform_out;
  std::string head_path;
  {
    Emulator emu(*f.model, base);
    head_path = emu.sites().back().path;
    uniform_out = (*f.model)(f.batch.images);
  }
  EmulatorConfig mixed = base;
  mixed.per_layer_specs[head_path] = "int2";
  {
    Emulator emu(*f.model, mixed);
    const Tensor mixed_out = (*f.model)(f.batch.images);
    EXPECT_FALSE(mixed_out.allclose(uniform_out, 1e-6f));
  }
}

TEST(Emulator, MetadataFormatsCaptureStateAtEachSite) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "bfp_e5m5_b16";
  Emulator emu(*f.model, cfg);
  (void)(*f.model)(f.batch.images);
  for (auto& site : emu.sites()) {
    EXPECT_TRUE(site.act_format->has_metadata());
    const auto fields = site.act_format->metadata_fields();
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_GT(fields[0].count, 0) << site.path;
  }
}

}  // namespace
}  // namespace ge::core
