// AfpFormat (AdaptivFloat) conformance: adaptive bias selection, the
// movable representable range, and the exponent-bias metadata register.
#include <gtest/gtest.h>

#include <cmath>

#include "formats/afp.hpp"
#include "tensor/rng.hpp"

namespace ge::fmt {
namespace {

TEST(Afp, RejectsBadParameters) {
  EXPECT_THROW(AfpFormat(1, 3), std::invalid_argument);
  EXPECT_THROW(AfpFormat(9, 3), std::invalid_argument);
  EXPECT_THROW(AfpFormat(4, 0), std::invalid_argument);
}

TEST(Afp, DefaultBiasMatchesTableOne) {
  AfpFormat f(4, 3);  // AFP8 e4m3, standard bias, no denormals
  EXPECT_EQ(f.exp_bias(), 7);
  EXPECT_EQ(f.abs_max(), 240.0);
  EXPECT_NEAR(f.abs_min(), 0.015625, 1e-9);
  EXPECT_NEAR(f.dynamic_range_db(), 83.73, 0.05);
}

TEST(Afp, BiasAdaptsToTensorMaximum) {
  AfpFormat f(4, 3);
  // data max 0.9: e_data = -1; bias = 14 - (-1) = 15, range moves down
  Tensor t({3}, {0.9f, 0.1f, -0.5f});
  (void)f.real_to_format_tensor(t);
  EXPECT_EQ(f.exp_bias(), 15);
  // after adaptation the max representable covers the data snugly
  EXPECT_GE(f.abs_max(), 0.9);
  EXPECT_LE(f.abs_max(), 1.0);
}

TEST(Afp, MovableRangeKeepsSmallTensorsAccurate) {
  // A tensor of tiny values is unrepresentable at the standard bias but
  // accurate after adaptation — AdaptivFloat's raison d'être.
  AfpFormat f(4, 3);
  Rng rng(31);
  Tensor t = rng.uniform_tensor({64}, 1e-4f, 2e-4f);
  Tensor q = f.real_to_format_tensor(t);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_NEAR(q[i], t[i], t[i] * 0.08f);  // <= ~2^-m relative error
  }
}

TEST(Afp, SaturatesInsteadOfInf) {
  AfpFormat f(4, 3);
  Tensor t({2}, {100.0f, 1.0f});
  Tensor q = f.real_to_format_tensor(t);
  EXPECT_TRUE(std::isfinite(q[0]));
  const float mx = static_cast<float>(f.abs_max());
  EXPECT_EQ(f.quantize_value(1e30f), mx);
  EXPECT_EQ(f.quantize_value(-1e30f), -mx);
  (void)q;
}

TEST(Afp, EncodeDecodeRoundTripsQuantized) {
  AfpFormat f(4, 3);
  Rng rng(32);
  Tensor t = rng.normal_tensor({128}, 0.0f, 2.0f);
  Tensor q = f.real_to_format_tensor(t);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(f.format_to_real(f.real_to_format(q[i])), q[i]);
  }
}

TEST(Afp, ReplayUnderUnchangedMetadataIsIdentity) {
  // decode_last_tensor re-quantises the captured inputs under the current
  // bias; with an uncorrupted register it must reproduce the quantised
  // tensor exactly.
  AfpFormat f(4, 3);
  Rng rng(33);
  Tensor t = rng.normal_tensor({256}, 0.0f, 3.0f);
  Tensor q = f.real_to_format_tensor(t);
  Tensor decoded = f.decode_last_tensor();
  EXPECT_TRUE(decoded.equals(q));
}

TEST(Afp, MetadataRegisterReadsBiasOffset) {
  AfpFormat f(4, 3);
  Tensor t({1}, {1.0f});  // e_data = 0 -> bias = 14 = standard(7) + 7
  (void)f.real_to_format_tensor(t);
  EXPECT_EQ(f.exp_bias(), 14);
  EXPECT_EQ(f.bias_offset(), 7);
  const auto fields = f.metadata_fields();
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].name, "exp_bias");
  EXPECT_EQ(fields[0].bit_width, AfpFormat::kOffsetBits);
  EXPECT_EQ(f.read_metadata("exp_bias", 0).value(), 7u);
}

TEST(Afp, BiasOffsetClampsToRegisterRange) {
  // gigantic max -> desired offset far below the register floor
  AfpFormat f(4, 3);
  Tensor t({1}, {1e30f});
  (void)f.real_to_format_tensor(t);
  EXPECT_EQ(f.bias_offset(), AfpFormat::kOffsetMin);
  // microscopic max -> clamped at the ceiling, range still reaches down
  AfpFormat g(4, 3);
  Tensor u({1}, {1e-7f});
  (void)g.real_to_format_tensor(u);
  EXPECT_EQ(g.bias_offset(), AfpFormat::kOffsetMax);
}

TEST(Afp, MetadataFaultMovesRangeDownAndClips) {
  // Persistent-register fault semantics: a bias *increase* moves the
  // representable range down; every value above the new max clips to it
  // (bounded corruption — the reason AFP metadata faults are milder than
  // BFP's, §IV-C).
  AfpFormat f(4, 3);
  Tensor t({4}, {1.0f, 0.5f, -0.75f, 0.25f});
  Tensor q = f.real_to_format_tensor(t);
  EXPECT_EQ(f.bias_offset(), 7);  // e_data = 0
  BitString reg = f.read_metadata("exp_bias", 0);
  reg.flip_bit(3);  // offset 7 -> 15: bias up by 8, range down 8 binades
  f.write_metadata("exp_bias", 0, reg);
  const float new_max = static_cast<float>(f.abs_max());
  EXPECT_LT(new_max, 0.01f);
  Tensor corrupted = f.decode_last_tensor();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::fabs(corrupted[i]), new_max, 1e-6f) << i;
    EXPECT_EQ(std::signbit(corrupted[i]), std::signbit(q[i]));
  }
}

TEST(Afp, MetadataFaultMovesRangeUpAndFlushes) {
  // A bias *decrease* moves the range up; values below the new minimum
  // flush to zero while in-range values survive.
  AfpFormat f(4, 3);
  // offset becomes 7 (e_data = 0); flipping bit 2 gives offset 3:
  // bias 10, e_min = -9 -> values below ~2^-10 flush
  Tensor t({3}, {1.0f, 0.5f, 0.0005f});
  Tensor q = f.real_to_format_tensor(t);
  EXPECT_GT(std::fabs(q[2]), 0.0f);  // representable before the fault
  BitString reg = f.read_metadata("exp_bias", 0);
  reg.flip_bit(2);
  f.write_metadata("exp_bias", 0, reg);
  Tensor corrupted = f.decode_last_tensor();
  EXPECT_EQ(corrupted[0], q[0]);  // in-range values unaffected
  EXPECT_EQ(corrupted[2], 0.0f);  // below the moved range: flushed
}

TEST(Afp, MetadataRegisterIsTwosComplement) {
  AfpFormat f(4, 3);
  Tensor t({1}, {1e30f});  // huge max -> negative offset (clamped)
  (void)f.real_to_format_tensor(t);
  EXPECT_LT(f.bias_offset(), 0);
  const BitString reg = f.read_metadata("exp_bias", 0);
  AfpFormat g(4, 3);
  Tensor t2({1}, {1.0f});
  (void)g.real_to_format_tensor(t2);
  g.write_metadata("exp_bias", 0, reg);
  EXPECT_EQ(g.exp_bias(), f.exp_bias());  // round-trips through the register
}

TEST(Afp, MetadataErrorsAreChecked) {
  AfpFormat f(4, 3);
  EXPECT_THROW(f.read_metadata("scale", 0), std::logic_error);
  EXPECT_THROW(f.write_metadata("exp_bias", 1,
                                BitString(0, AfpFormat::kOffsetBits)),
               std::logic_error);
  EXPECT_THROW(f.write_metadata("exp_bias", 0, BitString(0, 8)),
               std::logic_error);
  EXPECT_THROW(f.decode_last_tensor(), std::logic_error);
}

TEST(Afp, DenormalOptionExtendsRangeDown) {
  AfpFormat with_dn(4, 3, {.denormals = true});
  AfpFormat without(4, 3);
  EXPECT_LT(with_dn.abs_min(), without.abs_min());
  EXPECT_EQ(with_dn.spec(), "afp_e4m3_dn");
  EXPECT_EQ(without.spec(), "afp_e4m3");
}

class AfpGrid : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AfpGrid, AdaptationNeverWorseThanStandardBiasOnMaxAlignedData) {
  const auto [e, m] = GetParam();
  Rng rng(90 + e * 3 + m);
  // Data in an arbitrary decade; adapted AFP must keep relative error
  // bounded by ~2^-m regardless of the decade.
  for (float scale : {1e-3f, 1.0f, 1e3f}) {
    AfpFormat f(e, m);
    Tensor t = rng.uniform_tensor({64}, 0.5f * scale, scale);
    Tensor q = f.real_to_format_tensor(t);
    for (int64_t i = 0; i < t.numel(); ++i) {
      EXPECT_NEAR(q[i], t[i], t[i] * (1.5f / std::ldexp(1.0f, m)))
          << "e" << e << "m" << m << " scale " << scale;
    }
  }
}

TEST_P(AfpGrid, IdempotentAndSymmetric) {
  const auto [e, m] = GetParam();
  AfpFormat f(e, m);
  Tensor ctx({1}, {4.0f});
  (void)f.real_to_format_tensor(ctx);  // fix a bias context
  Rng rng(95 + e * 3 + m);
  for (int i = 0; i < 200; ++i) {
    const float x = rng.normal(0.0f, 2.0f);
    const float q = f.quantize_value(x);
    EXPECT_EQ(f.quantize_value(q), q);
    EXPECT_EQ(f.quantize_value(-x), -q);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, AfpGrid,
                         ::testing::Values(std::pair{4, 3}, std::pair{5, 2},
                                           std::pair{4, 4}, std::pair{2, 5},
                                           std::pair{5, 10}, std::pair{3, 2}),
                         [](const auto& info) {
                           return "e" + std::to_string(info.param.first) +
                                  "m" + std::to_string(info.param.second);
                         });

}  // namespace
}  // namespace ge::fmt
