// ge::io contract tests: the .gec container (framing, CRC, endianness),
// the typed codecs (tensor / state dict / rng round trips), and model
// checkpoints (save -> load -> bitwise-identical evaluation). Corruption
// is half the point: every truncation, bit flip, and header lie must land
// in IoError — never UB, never a silent wrong answer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "formats/format_registry.hpp"
#include "io/container.hpp"
#include "io/model_io.hpp"
#include "io/serialize.hpp"
#include "models/model_factory.hpp"
#include "nn/module.hpp"
#include "tensor/rng.hpp"

namespace ge::io {
namespace {

std::string tmp_path(const std::string& name) {
  return "/tmp/ge_test_io_" + name + ".gec";
}

std::vector<uint8_t> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

// --- container framing -----------------------------------------------------

TEST(Container, Crc32MatchesIeeeCheckValue) {
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Container, FileRoundTripPreservesSections) {
  const std::string path = tmp_path("roundtrip");
  Container c;
  c.add("AAAA", {1, 2, 3});
  c.add("BBBB", {});  // empty payloads are legal
  c.add("AAAA", {9});  // duplicate tags too; find() returns the first
  save_file(path, c);
  const Container back = load_file(path);
  ASSERT_EQ(back.sections().size(), 3u);
  EXPECT_EQ(back.sections()[0].tag, "AAAA");
  EXPECT_EQ(back.sections()[0].payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(back.sections()[1].tag, "BBBB");
  EXPECT_TRUE(back.sections()[1].payload.empty());
  EXPECT_EQ(back.find("BBBB"), &back.sections()[1]);
  EXPECT_EQ(back.find("CCCC"), nullptr);
  EXPECT_THROW(back.require("CCCC", path), IoError);
  std::remove(path.c_str());
}

TEST(Container, HeaderIsLittleEndianOnDisk) {
  // The format is defined in bytes, not in host integers: magic at offset
  // 0, then version and section count as little-endian u32 regardless of
  // the machine that wrote the file.
  const std::string path = tmp_path("header");
  Container c;
  c.add("TENS", {0xAB});
  save_file(path, c);
  const std::vector<uint8_t> bytes = slurp(path);
  ASSERT_GE(bytes.size(), 12u);
  EXPECT_EQ(bytes[0], 'G');
  EXPECT_EQ(bytes[1], 'E');
  EXPECT_EQ(bytes[2], 'C');
  EXPECT_EQ(bytes[3], '1');
  EXPECT_EQ(bytes[4], kSchemaVersion & 0xFF);  // LSB first
  EXPECT_EQ(bytes[5], 0u);
  EXPECT_EQ(bytes[6], 0u);
  EXPECT_EQ(bytes[7], 0u);
  EXPECT_EQ(bytes[8], 1u);  // section count
  EXPECT_EQ(bytes[9], 0u);
  // section header: 4-char tag, u64 length LSB-first
  EXPECT_EQ(bytes[12], 'T');
  EXPECT_EQ(bytes[16], 1u);  // payload length
  std::remove(path.c_str());
}

TEST(Container, MissingFileIsDiagnosed) {
  EXPECT_THROW(load_file("/tmp/ge_test_io_does_not_exist.gec"), IoError);
}

TEST(Container, BadMagicIsDiagnosed) {
  const std::string path = tmp_path("magic");
  Container c;
  c.add("TENS", {1, 2, 3, 4});
  save_file(path, c);
  auto bytes = slurp(path);
  bytes[0] = 'X';
  spit(path, bytes);
  EXPECT_THROW(load_file(path), IoError);
  std::remove(path.c_str());
}

TEST(Container, UnsupportedVersionIsDiagnosed) {
  const std::string path = tmp_path("version");
  Container c;
  c.add("TENS", {1});
  save_file(path, c);
  auto bytes = slurp(path);
  bytes[4] = static_cast<uint8_t>(kSchemaVersion + 1);
  spit(path, bytes);
  EXPECT_THROW(load_file(path), IoError);
  std::remove(path.c_str());
}

TEST(Container, OlderSchemaVersionStillLoads) {
  // Files from every release back to kMinSchemaVersion must keep loading,
  // and the parsed container must remember which version it came from so
  // section decoders can apply per-version rules (campaign_state.cpp).
  const std::string path = tmp_path("oldversion");
  Container c;
  c.add("TENS", {7, 8});
  save_file(path, c);
  auto bytes = slurp(path);
  ASSERT_EQ(bytes[4], kSchemaVersion & 0xFF);
  bytes[4] = static_cast<uint8_t>(kMinSchemaVersion);  // header is not CRC'd
  spit(path, bytes);
  const Container back = load_file(path);
  EXPECT_EQ(back.version(), kMinSchemaVersion);
  ASSERT_EQ(back.sections().size(), 1u);
  EXPECT_EQ(back.sections()[0].payload, (std::vector<uint8_t>{7, 8}));
  std::remove(path.c_str());
}

TEST(Container, EveryPayloadBitFlipIsCaughtByCrc) {
  const std::string path = tmp_path("crc");
  Container c;
  c.add("TENS", {0x10, 0x20, 0x30, 0x40, 0x50});
  save_file(path, c);
  const auto pristine = slurp(path);
  // Flip one bit in every payload byte position in turn; the CRC must
  // catch each one.
  const size_t payload_start = pristine.size() - 5;
  for (size_t i = payload_start; i < pristine.size(); ++i) {
    auto bytes = pristine;
    bytes[i] ^= 0x01;
    spit(path, bytes);
    EXPECT_THROW(load_file(path), IoError) << "flipped byte " << i;
  }
  std::remove(path.c_str());
}

TEST(Container, EveryTruncationLengthIsDiagnosed) {
  const std::string path = tmp_path("trunc");
  Container c;
  c.add("TENS", {1, 2, 3, 4, 5, 6, 7, 8});
  save_file(path, c);
  const auto pristine = slurp(path);
  for (size_t keep = 0; keep < pristine.size(); ++keep) {
    spit(path, {pristine.begin(), pristine.begin() + keep});
    EXPECT_THROW(load_file(path), IoError) << "truncated to " << keep;
  }
  std::remove(path.c_str());
}

TEST(Container, TrailingGarbageIsDiagnosed) {
  const std::string path = tmp_path("trailing");
  Container c;
  c.add("TENS", {1});
  save_file(path, c);
  auto bytes = slurp(path);
  bytes.push_back(0xEE);
  spit(path, bytes);
  EXPECT_THROW(load_file(path), IoError);
  std::remove(path.c_str());
}

TEST(Container, SaveIsAtomicNoTmpFileLeftBehind) {
  const std::string path = tmp_path("atomic");
  Container c;
  c.add("TENS", {1});
  save_file(path, c);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "tmp file survived the rename";
  std::remove(path.c_str());
}

// --- byte-level reader -----------------------------------------------------

TEST(ByteReader, OverrunThrowsInsteadOfReadingOutOfBounds) {
  ByteWriter w;
  w.u32(7);
  const auto bytes = w.take();
  ByteReader r(bytes, "test");
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_TRUE(r.at_end());
  EXPECT_THROW(r.u8(), IoError);
  ByteReader r2(bytes, "test");
  EXPECT_THROW(r2.u64(), IoError);  // 4 bytes can't satisfy a u64
}

TEST(ByteReader, LyingStringLengthIsDiagnosed) {
  ByteWriter w;
  w.u64(uint64_t{1} << 40);  // claims a terabyte of string
  const auto bytes = w.take();
  ByteReader r(bytes, "test");
  EXPECT_THROW(r.str(), IoError);
}

// --- tensor codec ----------------------------------------------------------

std::vector<Tensor> odd_shapes() {
  std::vector<Tensor> ts;
  ts.emplace_back(Shape{});  // 0-d scalar
  ts.back().data()[0] = -3.25f;
  ts.emplace_back(Shape{0});  // empty
  ts.emplace_back(Shape{3, 0, 2});  // empty dim mid-shape
  Tensor big(Shape{2, 3, 4});
  for (int64_t i = 0; i < big.numel(); ++i) {
    big.data()[i] = static_cast<float>(i) * 0.5f - 6.0f;
  }
  ts.push_back(big.reshape({4, 6}));  // reshape-shared storage
  ts.push_back(std::move(big));
  return ts;
}

TEST(TensorCodec, RoundTripsOddShapesBitwise) {
  for (const Tensor& t : odd_shapes()) {
    ByteWriter w;
    encode_tensor(w, t);
    const auto bytes = w.take();
    ByteReader r(bytes, "test");
    const Tensor back = decode_tensor(r);
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(back.shape(), t.shape());
    EXPECT_TRUE(back.equals(t));
  }
}

TEST(TensorCodec, QuantizedSnapshotsRoundTripAcrossAllSixFormats) {
  // Property test: whatever bit patterns a format writes (subnormals,
  // saturated values, posit tapered precision), serialization must carry
  // them through unchanged.
  const std::vector<std::string> specs = {
      "fp_e4m3", "fxp_1_4_3", "int8", "bfp_e5m5_b16", "afp_e4m3", "posit_8_1",
  };
  Tensor input({4, 8});
  for (int64_t i = 0; i < input.numel(); ++i) {
    input.data()[i] = 0.37f * static_cast<float>((i % 13) - 6);
  }
  for (const auto& spec : specs) {
    auto f = fmt::make_format(spec);
    const Tensor q = f->real_to_format_tensor(input);
    ByteWriter w;
    encode_tensor(w, q);
    const auto bytes = w.take();
    ByteReader r(bytes, spec);
    const Tensor back = decode_tensor(r);
    EXPECT_TRUE(back.equals(q)) << spec;
  }
}

TEST(TensorCodec, CorruptRankAndDimsAreDiagnosed) {
  {
    ByteWriter w;  // unknown dtype
    w.u8(99);
    const auto b = w.take();
    ByteReader r(b, "t");
    EXPECT_THROW(decode_tensor(r), IoError);
  }
  {
    ByteWriter w;  // negative extent
    w.u8(kDtypeF32);
    w.u32(1);
    w.i64(-4);
    const auto b = w.take();
    ByteReader r(b, "t");
    EXPECT_THROW(decode_tensor(r), IoError);
  }
  {
    ByteWriter w;  // extent product overflows int64 — must not wrap into UB
    w.u8(kDtypeF32);
    w.u32(3);
    w.i64(int64_t{1} << 31);
    w.i64(int64_t{1} << 31);
    w.i64(int64_t{1} << 31);
    const auto b = w.take();
    ByteReader r(b, "t");
    EXPECT_THROW(decode_tensor(r), IoError);
  }
  {
    ByteWriter w;  // plausible shape, missing payload
    w.u8(kDtypeF32);
    w.u32(1);
    w.i64(16);
    const auto b = w.take();
    ByteReader r(b, "t");
    EXPECT_THROW(decode_tensor(r), IoError);
  }
  {
    // Extent fits int64 but n * sizeof(float) wraps size_t to 0 — the
    // payload bound must be computed by division, not multiplication, or
    // this reaches the allocator with a 2^62-element request.
    ByteWriter w;
    w.u8(kDtypeF32);
    w.u32(1);
    w.i64(int64_t{1} << 62);
    const auto b = w.take();
    ByteReader r(b, "t");
    EXPECT_THROW(decode_tensor(r), IoError);
  }
}

// --- state dict & rng codecs -----------------------------------------------

TEST(StateDictCodec, PreservesOrderNamesAndValues) {
  StateDict dict;
  Tensor a({2, 2});
  a.data()[3] = 4.0f;
  dict.emplace_back("z.weight", a);
  dict.emplace_back("a.bias", Tensor(Shape{3}));
  ByteWriter w;
  encode_state_dict(w, dict);
  const auto bytes = w.take();
  ByteReader r(bytes, "test");
  const StateDict back = decode_state_dict(r);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].first, "z.weight");  // insertion order, not sorted
  EXPECT_TRUE(back[0].second.equals(a));
  EXPECT_EQ(back[1].first, "a.bias");
}

TEST(RngCodec, RestoredStreamContinuesTheDrawSequence) {
  Rng rng(1234);
  for (int i = 0; i < 17; ++i) rng.uniform();  // advance mid-stream
  ByteWriter w;
  encode_rng(w, rng);
  const auto bytes = w.take();
  ByteReader r(bytes, "test");
  Rng back = decode_rng(r);
  EXPECT_EQ(back.seed(), rng.seed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(back.uniform(), rng.uniform()) << "draw " << i;
  }
  // child() derives from the construction seed — must survive the trip too
  EXPECT_EQ(back.child(42).uniform(), rng.child(42).uniform());
}

// --- model checkpoints -----------------------------------------------------

data::SyntheticVisionConfig tiny_cfg() {
  data::SyntheticVisionConfig cfg;
  cfg.train_count = 8;
  cfg.test_count = 16;
  return cfg;
}

void expect_model_round_trip(const std::string& name) {
  const std::string path = tmp_path("model_" + name);
  data::SyntheticVision data(tiny_cfg());
  const auto batch = data::take(data.test(), 0, 4);

  auto saved = models::make_model(name, data.config(), 11);
  saved->eval();
  const Tensor want = (*saved)(batch.images);
  save_model(path, *saved, name);

  const ModelMeta meta = read_model_meta(path);
  EXPECT_EQ(meta.model_name, name);
  EXPECT_GT(meta.parameter_count, 0);

  // A *differently initialised* instance must become bitwise identical.
  auto loaded = models::make_model(name, data.config(), 99);
  load_model(path, *loaded);
  loaded->eval();
  const Tensor got = (*loaded)(batch.images);
  EXPECT_TRUE(got.equals(want)) << name;
  std::remove(path.c_str());
}

TEST(ModelIo, TinyResnetEvaluatesBitwiseIdenticallyAfterLoad) {
  expect_model_round_trip("tiny_resnet");
}

TEST(ModelIo, TinyDeitEvaluatesBitwiseIdenticallyAfterLoad) {
  expect_model_round_trip("tiny_deit");
}

TEST(ModelIo, BuffersRoundTripWithParameters) {
  // tiny_resnet carries BatchNorm running stats in buffers; perturb them
  // and confirm the perturbation survives the trip (named_buffers path).
  const std::string path = tmp_path("buffers");
  data::SyntheticVision data(tiny_cfg());
  auto m = models::make_model("tiny_resnet", data.config(), 5);
  auto bufs = m->named_buffers();
  ASSERT_FALSE(bufs.empty());
  bufs[0].second->value.data()[0] = 123.5f;
  save_model(path, *m, "tiny_resnet");

  auto fresh = models::make_model("tiny_resnet", data.config(), 5);
  load_model(path, *fresh);
  EXPECT_EQ(fresh->named_buffers()[0].second->value.cdata()[0], 123.5f);
  std::remove(path.c_str());
}

TEST(ModelIo, LoadIntoWrongArchitectureIsDiagnosed) {
  const std::string path = tmp_path("graft");
  data::SyntheticVision data(tiny_cfg());
  auto mlp = models::make_model("mlp", data.config(), 1);
  save_model(path, *mlp, "mlp");
  auto cnn = models::make_model("simple_cnn", data.config(), 1);
  EXPECT_THROW(load_model(path, *cnn), IoError);
  std::remove(path.c_str());
}

TEST(ModelIo, CampaignFileIsNotAModelCheckpoint) {
  const std::string path = tmp_path("wrongkind");
  Container c;
  c.add("CAMP", {1, 2, 3});
  save_file(path, c);
  EXPECT_THROW(read_model_meta(path), IoError);
  data::SyntheticVision data(tiny_cfg());
  auto m = models::make_model("mlp", data.config(), 1);
  EXPECT_THROW(load_model(path, *m), IoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ge::io
