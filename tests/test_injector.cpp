// Injector: value and metadata fault injection, determinism, cleanup.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/injector.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"
#include "tensor/tensor_view.hpp"

namespace ge::core {
namespace {

struct Fixture {
  data::SyntheticVision data;
  std::unique_ptr<nn::Module> model;
  data::Batch batch;

  explicit Fixture(const std::string& model_name = "simple_cnn")
      : data([] {
          data::SyntheticVisionConfig cfg;
          cfg.train_count = 16;
          cfg.test_count = 64;
          return cfg;
        }()),
        model(models::make_model(model_name, data.config(), 3)),
        batch(data::take(data.test(), 0, 8)) {
    model->eval();
  }
};

TEST(Injector, ArmRejectsUnknownLayer) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = "not.a.layer";
  EXPECT_THROW(inj.arm(spec), std::invalid_argument);
}

TEST(Injector, ArmRejectsMetadataOnMetadatalessFormat) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";  // plain FP: no metadata
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.site = InjectionSite::kMetadata;
  EXPECT_THROW(inj.arm(spec), std::invalid_argument);
}

TEST(Injector, ArmRejectsZeroBits) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.num_bits = 0;
  EXPECT_THROW(inj.arm(spec), std::invalid_argument);
}

TEST(Injector, ActivationFlipFiresOncePerForward) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 7);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  inj.arm(spec);
  EXPECT_FALSE(inj.fired());
  (void)(*f.model)(f.batch.images);
  EXPECT_TRUE(inj.fired());
  ASSERT_TRUE(inj.last_record().has_value());
  const auto& rec = *inj.last_record();
  EXPECT_EQ(rec.site, InjectionSite::kActivationValue);
  EXPECT_EQ(rec.bits.size(), 1u);
  // second forward without re-arming: no further injection
  const Tensor clean1 = (*f.model)(f.batch.images);
  const Tensor clean2 = (*f.model)(f.batch.images);
  EXPECT_TRUE(clean1.equals(clean2));
}

TEST(Injector, DeterministicUnderSeed) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  auto run = [&](uint64_t seed) {
    Emulator emu(*f.model, cfg);
    Injector inj(emu, seed);
    InjectionSpec spec;
    spec.layer_path = emu.sites()[1].path;
    inj.arm(spec);
    (void)(*f.model)(f.batch.images);
    return *inj.last_record();
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a.element, b.element);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_TRUE(a.element != c.element || a.bits != c.bits);
}

TEST(Injector, ExplicitElementAndBitAreHonoured) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.element = 5;
  spec.bit = 14;  // top exponent bit of e5m10
  inj.arm(spec);
  (void)(*f.model)(f.batch.images);
  const auto& rec = *inj.last_record();
  EXPECT_EQ(rec.element, 5);
  ASSERT_EQ(rec.bits.size(), 1u);
  EXPECT_EQ(rec.bits[0], 14);
  EXPECT_NE(rec.value_before, rec.value_after);
}

TEST(Injector, BitOutOfRangeThrowsAtApplication) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "int8";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.bit = 9;  // int8 has 8 bits
  inj.arm(spec);
  EXPECT_THROW((void)(*f.model)(f.batch.images), std::invalid_argument);
}

TEST(Injector, MultiBitFlipsDistinctBits) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 9);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.num_bits = 4;
  inj.arm(spec);
  (void)(*f.model)(f.batch.images);
  const auto& rec = *inj.last_record();
  ASSERT_EQ(rec.bits.size(), 4u);
  std::set<int> unique(rec.bits.begin(), rec.bits.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(Injector, SignBitFlipNegatesActivation) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.element = 3;
  spec.bit = 15;  // sign bit
  inj.arm(spec);
  (void)(*f.model)(f.batch.images);
  const auto& rec = *inj.last_record();
  EXPECT_EQ(rec.value_after, -rec.value_before);
}

TEST(Injector, WeightInjectionAppliedAndRestored) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 3);
  LayerSite& site = emu.sites()[0];
  nn::Parameter* w = site.module->local_parameters()[0];
  const Tensor before = w->value;
  InjectionSpec spec;
  spec.layer_path = site.path;
  spec.site = InjectionSite::kWeightValue;
  spec.element = 7;
  inj.arm(spec);
  EXPECT_TRUE(inj.fired());  // weight faults apply at arm time
  EXPECT_FALSE(w->value.equals(before));
  EXPECT_NE(w->value[7], before[7]);
  inj.disarm();
  EXPECT_TRUE(w->value.equals(before));
}

TEST(Injector, MetadataInjectionAffectsManyValues) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "bfp_e5m5_b16";
  Emulator emu(*f.model, cfg);

  // fault-free emulated reference
  const Tensor golden = (*f.model)(f.batch.images);

  Injector inj(emu, 5);
  InjectionSpec spec;
  // Target the classifier head: its output IS the logits, so the fault
  // cannot be masked by downstream ReLUs (earlier-layer faults can be —
  // that masking is itself paper-faithful behaviour).
  spec.layer_path = emu.sites().back().path;
  spec.site = InjectionSite::kMetadata;
  spec.bit = 4;  // MSB of the 5-bit shared exponent: large corruption
  spec.metadata_index = 0;
  inj.arm(spec);
  const Tensor faulty = (*f.model)(f.batch.images);
  const auto& rec = *inj.last_record();
  EXPECT_EQ(rec.metadata_field, "shared_exponent");
  EXPECT_EQ(rec.metadata_index, 0);
  EXPECT_FALSE(faulty.allclose(golden, 1e-6f));
}

TEST(Injector, MetadataFieldNameIsValidated) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "int8";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 5);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.site = InjectionSite::kMetadata;
  spec.metadata_field = "unknown_register";
  inj.arm(spec);
  EXPECT_THROW((void)(*f.model)(f.batch.images), std::invalid_argument);
}

TEST(Injector, AfpBiasInjectionMisalignsLayerRange) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "afp_e4m3";
  Emulator emu(*f.model, cfg);
  const Tensor golden = (*f.model)(f.batch.images);
  Injector inj(emu, 6);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.site = InjectionSite::kMetadata;
  // Conv activations adapt to a small positive offset (bit 3 clear), so
  // setting bit 3 raises the bias by 8: the representable range moves 8
  // binades down and the layer's activations clip hard.
  spec.bit = 3;
  inj.arm(spec);
  const Tensor faulty = (*f.model)(f.batch.images);
  EXPECT_FALSE(faulty.equals(golden));
}

TEST(Injector, ToStringCoversAllSites) {
  EXPECT_STREQ(to_string(InjectionSite::kActivationValue),
               "activation_value");
  EXPECT_STREQ(to_string(InjectionSite::kWeightValue), "weight_value");
  EXPECT_STREQ(to_string(InjectionSite::kMetadata), "metadata");
  EXPECT_STREQ(to_string(ErrorModel::kBitFlip), "bit_flip");
  EXPECT_STREQ(to_string(ErrorModel::kStuckAt0), "stuck_at_0");
  EXPECT_STREQ(to_string(ErrorModel::kStuckAt1), "stuck_at_1");
}

TEST(Injector, StuckAt0ClearsSignBitOfNegativeActivation) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);

  // find a negative activation element at the first site
  Tensor probe;
  auto h = emu.sites()[0].module->add_forward_hook(
      [&probe](nn::Module&, Tensor& y) { probe = y; });
  (void)(*f.model)(f.batch.images);
  emu.sites()[0].module->remove_hook(h);
  int64_t neg = -1;
  for (int64_t i = 0; i < probe.numel(); ++i) {
    if (probe[i] < 0.0f) {
      neg = i;
      break;
    }
  }
  ASSERT_GE(neg, 0);

  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.model = ErrorModel::kStuckAt0;
  spec.element = neg;
  spec.bit = 15;  // sign bit
  inj.arm(spec);
  (void)(*f.model)(f.batch.images);
  const auto& rec = *inj.last_record();
  EXPECT_LT(rec.value_before, 0.0f);
  EXPECT_GT(rec.value_after, 0.0f);  // sign forced to 0: now positive
  EXPECT_EQ(rec.value_after, -rec.value_before);
}

TEST(Injector, StuckAt1IsIdempotentOnSetBits) {
  // Pinning a bit that is already 1 must be a masked fault (no change).
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Tensor probe;
  auto h = emu.sites()[0].module->add_forward_hook(
      [&probe](nn::Module&, Tensor& y) { probe = y; });
  (void)(*f.model)(f.batch.images);
  emu.sites()[0].module->remove_hook(h);
  int64_t neg = -1;
  for (int64_t i = 0; i < probe.numel(); ++i) {
    if (probe[i] < 0.0f) {
      neg = i;
      break;
    }
  }
  ASSERT_GE(neg, 0);

  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.model = ErrorModel::kStuckAt1;
  spec.element = neg;
  spec.bit = 15;  // sign bit of a negative value is already 1
  inj.arm(spec);
  (void)(*f.model)(f.batch.images);
  const auto& rec = *inj.last_record();
  EXPECT_EQ(rec.value_after, rec.value_before);
}

// --- error-model zoo -------------------------------------------------------

TEST(InjectorZoo, ZooModelsRejectNonActivationSites) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.model = ErrorModel::kBerUniform;
  spec.ber = 0.01;
  spec.site = InjectionSite::kWeightValue;
  EXPECT_THROW(inj.arm(spec), std::invalid_argument);
}

TEST(InjectorZoo, BerUniformRequiresARateInUnitInterval) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.model = ErrorModel::kBerUniform;
  spec.ber = 0.0;  // "no errors" is not a campaign
  EXPECT_THROW(inj.arm(spec), std::invalid_argument);
  spec.ber = 1.5;
  EXPECT_THROW(inj.arm(spec), std::invalid_argument);
}

TEST(InjectorZoo, BerUniformDeterministicAndCountsAffected) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  auto run = [&](uint64_t seed) {
    Emulator emu(*f.model, cfg);
    Injector inj(emu, seed);
    InjectionSpec spec;
    spec.layer_path = emu.sites()[0].path;
    spec.model = ErrorModel::kBerUniform;
    spec.ber = 0.02;
    inj.arm(spec);
    (void)(*f.model)(f.batch.images);
    return *inj.last_record();
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a.error_model, "ber_uniform");
  // A 2% per-bit rate over a whole activation tensor essentially always
  // lands at least one flip; determinism is the property under test.
  EXPECT_GT(a.affected, 0);
  EXPECT_EQ(a.affected, b.affected);
  EXPECT_EQ(a.element, b.element);
  EXPECT_EQ(a.bits, b.bits);
}

TEST(InjectorZoo, BurstFlipsAContiguousRun) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 3);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.model = ErrorModel::kBurst;
  spec.element = 2;
  spec.bit = 4;
  spec.burst_len = 3;
  inj.arm(spec);
  (void)(*f.model)(f.batch.images);
  const auto& rec = *inj.last_record();
  EXPECT_EQ(rec.error_model, "burst");
  EXPECT_EQ(rec.affected, 1);
  EXPECT_EQ(rec.bits, (std::vector<int>{4, 5, 6}));
}

TEST(InjectorZoo, BurstLengthValidatedAgainstFormatWidth) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";  // 16-bit word
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 3);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.model = ErrorModel::kBurst;
  spec.burst_len = 17;
  EXPECT_THROW(inj.arm(spec), std::invalid_argument);
  spec.burst_len = 3;
  spec.bit = 14;  // 14 + 3 > 16: run falls off the word
  EXPECT_THROW(inj.arm(spec), std::invalid_argument);
}

TEST(InjectorZoo, ChannelHitsEveryElementOfTheRegion) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  // Probe the site's activation geometry so the expected region size comes
  // from the same channel mapping the injector uses.
  Tensor probe;
  auto h = emu.sites()[0].module->add_forward_hook(
      [&probe](nn::Module&, Tensor& y) { probe = y; });
  (void)(*f.model)(f.batch.images);
  emu.sites()[0].module->remove_hook(h);
  Tensor geom(probe.shape());
  const int64_t expected = channel_view(geom, 0).numel();

  Injector inj(emu, 5);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  spec.model = ErrorModel::kChannel;
  spec.element = 0;  // explicit channel index
  inj.arm(spec);
  (void)(*f.model)(f.batch.images);
  const auto& rec = *inj.last_record();
  EXPECT_EQ(rec.error_model, "channel");
  EXPECT_EQ(rec.affected, expected);
  EXPECT_FALSE(rec.bits.empty());
}

TEST(InjectorZoo, RowBurstDeterministicUnderSeed) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  auto run = [&](uint64_t seed) {
    Emulator emu(*f.model, cfg);
    Injector inj(emu, seed);
    InjectionSpec spec;
    spec.layer_path = emu.sites()[1].path;
    spec.model = ErrorModel::kRowBurst;
    spec.ber = 0.5;  // thinning draws are part of the reproduced stream
    inj.arm(spec);
    (void)(*f.model)(f.batch.images);
    return *inj.last_record();
  };
  const auto a = run(11);
  const auto b = run(11);
  EXPECT_EQ(a.error_model, "row_burst");
  EXPECT_EQ(a.element, b.element);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.affected, b.affected);
}

TEST(InjectorZoo, ClassicRecordCarriesErrorModelAndAffected) {
  Fixture f;
  EmulatorConfig cfg;
  cfg.format_spec = "fp_e5m10";
  Emulator emu(*f.model, cfg);
  Injector inj(emu, 1);
  InjectionSpec spec;
  spec.layer_path = emu.sites()[0].path;
  inj.arm(spec);
  (void)(*f.model)(f.batch.images);
  const auto& rec = *inj.last_record();
  EXPECT_EQ(rec.error_model, "bit_flip");
  EXPECT_EQ(rec.affected, 1);
}

}  // namespace
}  // namespace ge::core
