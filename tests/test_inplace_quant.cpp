// In-place quantization contract (DESIGN.md §"Memory model"): for every
// format family, quantize_tensor_inplace must (a) agree bitwise with the
// value-returning real_to_format_tensor bridge, (b) write through the
// existing buffer when the tensor uniquely owns it — the zero-allocation
// hot path the emulator hook depends on — and (c) detach via COW when the
// storage is shared, never corrupting the other owner.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "formats/format_registry.hpp"
#include "obs/telemetry.hpp"
#include "tensor/tensor.hpp"

namespace ge::fmt {
namespace {

// One spec per family, covering value-only, scaled, and metadata formats.
const std::vector<std::string> kSpecs = {
    "fp_e4m3", "fxp_1_4_3", "int8", "posit_8_1", "bfp_e5m5_b16", "afp_e4m3",
};

Tensor test_input() {
  // Values spanning magnitudes, signs, zero, and a subnormal-ish tail so
  // every format's rounding/clamping paths fire.
  Tensor t({4, 8});
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    const float sign = (i % 2 == 0) ? 1.0f : -1.0f;
    p[i] = sign * 0.37f * std::pow(1.9f, static_cast<float>(i % 11) - 5.0f);
  }
  p[0] = 0.0f;
  return t;
}

TEST(InplaceQuant, MatchesValueReturningBridge) {
  for (const auto& spec : kSpecs) {
    const Tensor input = test_input();
    // Two fresh instances: metadata registers are per-instance state and
    // must not leak between the two paths.
    auto f1 = make_format(spec);
    auto f2 = make_format(spec);
    const Tensor bridged = f1->real_to_format_tensor(input);
    Tensor inplace = input.clone();
    f2->quantize_tensor_inplace(inplace);
    EXPECT_TRUE(bridged.equals(inplace)) << spec;
  }
}

TEST(InplaceQuant, UniqueOwnerKeepsItsBuffer) {
  for (const auto& spec : kSpecs) {
    auto f = make_format(spec);
    Tensor t = test_input();
    const float* before = t.cdata();
    f->quantize_tensor_inplace(t);
    EXPECT_EQ(t.cdata(), before) << spec << ": in-place path reallocated";
  }
}

TEST(InplaceQuant, SharedStorageDetachesAndPreservesSource) {
  for (const auto& spec : kSpecs) {
    auto f = make_format(spec);
    const Tensor original = test_input();
    Tensor shared = original;  // O(1) share
    f->quantize_tensor_inplace(shared);
    EXPECT_FALSE(shared.shares_storage_with(original)) << spec;
    EXPECT_TRUE(original.equals(test_input()))
        << spec << ": in-place quantization wrote through a shared buffer";
  }
}

TEST(InplaceQuant, BridgeSharesUntilQuantizerWrites) {
  // real_to_format_tensor is now implemented on top of the in-place kernel:
  // the input must come back untouched (the kernel's first write detaches).
  for (const auto& spec : kSpecs) {
    auto f = make_format(spec);
    const Tensor input = test_input();
    const Tensor out = f->real_to_format_tensor(input);
    EXPECT_TRUE(input.equals(test_input())) << spec;
    EXPECT_FALSE(out.shares_storage_with(input)) << spec;
  }
}

TEST(InplaceQuant, MetadataCapturedForDecode) {
  // Metadata formats must capture their registers from the in-place path
  // too: decode_last_tensor after an uncorrupted round trip reproduces the
  // quantized tensor exactly.
  for (const auto& spec : {std::string("bfp_e5m5_b16"), std::string("afp_e4m3"),
                           std::string("int8")}) {
    auto f = make_format(spec);
    if (!f->has_metadata()) continue;
    Tensor t = test_input();
    f->quantize_tensor_inplace(t);
    EXPECT_TRUE(f->decode_last_tensor().equals(t)) << spec;
  }
}

TEST(InplaceQuant, HotLoopAvoidsCowAfterFirstPass) {
  // Steady state of the emulator hook: a uniquely-owned tensor quantized
  // repeatedly must never detach (no COW copies) — the whole point of the
  // in-place refactor.
  auto f = make_format("fp_e4m3");
  Tensor t = test_input();
  f->quantize_tensor_inplace(t);  // first pass may capture metadata etc.
  const uint64_t cow_before = obs::counter_value(obs::Counter::kCowCopies);
  for (int i = 0; i < 8; ++i) f->quantize_tensor_inplace(t);
  EXPECT_EQ(obs::counter_value(obs::Counter::kCowCopies), cow_before);
}

TEST(InplaceQuant, EmptyTensorIsANoOp) {
  for (const auto& spec : kSpecs) {
    if (spec == "bfp_e5m5_b16") continue;  // bfp requires a block multiple
    auto f = make_format(spec);
    Tensor t;
    EXPECT_NO_THROW(f->quantize_tensor_inplace(t)) << spec;
    EXPECT_EQ(t.numel(), 0) << spec;
  }
}

// --- bulk codebook decode (the inverse direction) --------------------------

// Value-only formats <= 16 bits: decode is a pure table lookup.
const std::vector<std::string> kCodebookSpecs = {"fp_e4m3", "fxp_1_4_3",
                                                 "posit_8_1"};
// Metadata-bearing formats decode per tensor, never per table.
const std::vector<std::string> kNoCodebookSpecs = {"int8", "bfp_e5m5_b16",
                                                   "afp_e4m3"};

TEST(DequantCodes, InplaceDecodeMatchesScalarDecode) {
  for (const auto& spec : kCodebookSpecs) {
    auto f = make_format(spec);
    const Tensor input = test_input();
    Tensor codes(input.shape());
    Tensor want(input.shape());
    for (int64_t i = 0; i < input.numel(); ++i) {
      const BitString b = f->real_to_format(input.cdata()[i]);
      codes.data()[i] = static_cast<float>(b.value());
      want.data()[i] = f->format_to_real(b);
    }
    ASSERT_TRUE(dequantize_codes_inplace(spec, codes)) << spec;
    EXPECT_TRUE(codes.equals(want)) << spec;
  }
}

TEST(DequantCodes, MetadataFormatsDeclineAndLeaveTensorUntouched) {
  for (const auto& spec : kNoCodebookSpecs) {
    EXPECT_EQ(dequant_codebook(spec), nullptr) << spec;
    Tensor t = test_input();
    const Tensor before = t.clone();
    EXPECT_FALSE(dequantize_codes_inplace(spec, t)) << spec;
    EXPECT_TRUE(t.equals(before)) << spec;
  }
}

TEST(DequantCodes, BadCodesAreRejectedBeforeAnyWrite) {
  auto check_rejected = [](float bad_code) {
    Tensor t({4});
    t.data()[0] = 1.0f;
    t.data()[1] = 2.0f;
    t.data()[2] = bad_code;
    t.data()[3] = 3.0f;
    const Tensor before = t.clone();
    EXPECT_THROW(dequantize_codes_inplace("fp_e4m3", t),
                 std::invalid_argument);
    // Validation precedes mutation: a rejected tensor is untouched.
    EXPECT_TRUE(t.equals(before));
  };
  check_rejected(256.0f);  // out of range for an 8-bit format
  check_rejected(-1.0f);
  check_rejected(3.5f);    // not an integral code point
}

TEST(DequantCodes, SharedStorageDetachesViaCow) {
  auto f = make_format("fp_e4m3");
  Tensor codes({8});
  for (int64_t i = 0; i < 8; ++i) {
    codes.data()[i] = static_cast<float>(i * 7);
  }
  const Tensor original = codes;  // O(1) share
  ASSERT_TRUE(dequantize_codes_inplace("fp_e4m3", codes));
  EXPECT_FALSE(codes.shares_storage_with(original));
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(original.cdata()[i], static_cast<float>(i * 7));
  }
}

TEST(DequantCodes, RoundTripsTheInplaceQuantizerOutput) {
  // encode (quantize to codes via scalar path) -> bulk decode must land on
  // exactly the values quantize_tensor_inplace produces.
  for (const auto& spec : kCodebookSpecs) {
    auto f1 = make_format(spec);
    Tensor values = test_input();
    f1->quantize_tensor_inplace(values);

    auto f2 = make_format(spec);
    Tensor codes(values.shape());
    for (int64_t i = 0; i < values.numel(); ++i) {
      codes.data()[i] =
          static_cast<float>(f2->real_to_format(values.cdata()[i]).value());
    }
    ASSERT_TRUE(dequantize_codes_inplace(spec, codes)) << spec;
    EXPECT_TRUE(codes.equals(values)) << spec;
  }
}

}  // namespace
}  // namespace ge::fmt
