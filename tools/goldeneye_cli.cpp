// goldeneye_cli — thin wrapper over ge::core::run_cli (src/core/cli.hpp).
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ge::core::run_cli(args, std::cout, std::cerr);
}
