// perf_gate — the CI perf-regression comparator.
//
//   perf_gate --baseline bench/baselines/fig3_runtime.json
//             --current  BENCH_fig3_runtime.json
//             [--metrics wall_ms[,trials_per_sec_cache_on,...]]
//             [--threshold 15]
//
// Exit status: 0 pass (or GE_PERF_GATE=off), 1 median regression beyond
// the threshold, 2 usage / IO / parse error. The threshold is a percent:
// --threshold 15 fails when the median current/baseline ratio across the
// compared metrics exceeds 1.15.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/perf_gate.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: perf_gate --baseline FILE --current FILE\n"
               "                 [--metrics NAME[,NAME...]] (default wall_ms)\n"
               "                 [--threshold PCT]          (default 15)\n"
               "\n"
               "Compares two BENCH_<name>.json files (bench/harness.hpp\n"
               "format) row-by-row and exits 1 when the median\n"
               "current/baseline ratio exceeds 1 + PCT/100.\n"
               "Set GE_PERF_GATE=off to skip the gate (always exits 0).\n");
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string metrics_csv = "wall_ms";
  double threshold_pct = 15.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_gate: %s needs a value\n", flag);
        usage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = next("--baseline");
    } else if (arg == "--current") {
      current_path = next("--current");
    } else if (arg == "--metrics") {
      metrics_csv = next("--metrics");
    } else if (arg == "--threshold") {
      char* end = nullptr;
      threshold_pct = std::strtod(next("--threshold"), &end);
      if (end == nullptr || *end != '\0' || threshold_pct < 0.0) {
        std::fprintf(stderr, "perf_gate: bad --threshold\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "perf_gate: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    usage(stderr);
    return 2;
  }
  const std::vector<std::string> metrics = split_csv(metrics_csv);
  if (metrics.empty()) {
    std::fprintf(stderr, "perf_gate: --metrics selected nothing\n");
    return 2;
  }

  // The escape hatch: a known-noisy runner or an intentional perf trade
  // can disable the gate for one run without editing CI.
  if (const char* env = std::getenv("GE_PERF_GATE")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
      std::printf("perf_gate: disabled via GE_PERF_GATE=%s — skipping\n", env);
      return 0;
    }
  }

  try {
    namespace pg = ge::core::perf_gate;
    const pg::BenchFile base = pg::load_bench_json(baseline_path);
    const pg::BenchFile cur = pg::load_bench_json(current_path);
    if (base.bench != cur.bench) {
      std::fprintf(stderr,
                   "perf_gate: bench mismatch — baseline is '%s', current is "
                   "'%s'\n",
                   base.bench.c_str(), cur.bench.c_str());
      return 2;
    }
    const pg::GateResult r =
        pg::compare_bench(base, cur, metrics, threshold_pct / 100.0);

    std::printf("perf gate: %s (threshold +%.0f%%)\n", base.bench.c_str(),
                threshold_pct);
    std::printf("%-56s %-12s %12s %12s %8s\n", "case", "metric", "baseline",
                "current", "ratio");
    for (const auto& c : r.rows) {
      std::printf("%-56s %-12s %12.4f %12.4f %7.3fx\n", c.row.c_str(),
                  c.metric.c_str(), c.baseline, c.current, c.ratio);
    }
    for (const auto& m : r.missing) {
      std::printf("  [not compared] %s\n", m.c_str());
    }
    if (r.rows.empty()) {
      std::fprintf(stderr,
                   "perf_gate: no comparable rows — check --metrics and that "
                   "both files come from the same bench\n");
      return 2;
    }
    std::printf("median ratio: %.3fx   worst: %.3fx   -> %s\n",
                r.median_ratio, r.worst_ratio, r.pass ? "PASS" : "FAIL");
    return r.pass ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_gate: %s\n", e.what());
    return 2;
  }
}
