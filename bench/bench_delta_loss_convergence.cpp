// §IV-C claim check — ΔLoss converges with far fewer injections than the
// mismatch metric: its continuous values carry more information per
// injection than mismatch's rare binary outcomes.
//
// For each layer we run one campaign, then compute for both metrics the
// number of injections n* needed for the 95% confidence interval of the
// mean to shrink below 20% of the mean:
//     n* = (1.96 * sigma / (0.2 * mu))^2
// For a Bernoulli mismatch stream with small SDC probability p,
// sigma/mu = sqrt((1-p)/p) explodes; ΔLoss's sigma/mu is O(1) — that is
// the paper's statistical argument, measured here on real campaigns.
#include <cmath>
#include <cstdio>

#include "core/campaign.hpp"
#include "harness.hpp"

namespace {

struct Stats {
  double mean = 0.0;
  double sigma = 0.0;
};

template <typename T>
Stats stats_of(const std::vector<T>& xs) {
  Stats s;
  for (T x : xs) s.mean += double(x);
  s.mean /= double(xs.size());
  double v = 0.0;
  for (T x : xs) v += (double(x) - s.mean) * (double(x) - s.mean);
  s.sigma = std::sqrt(v / double(xs.size() - 1));
  return s;
}

/// Injections needed for the 95% CI to reach 20% of the mean.
double n_star(const Stats& s) {
  if (s.mean <= 0.0) return std::numeric_limits<double>::infinity();
  const double k = 1.96 * s.sigma / (0.2 * s.mean);
  return k * k;
}

}  // namespace

int main() {
  using namespace ge;
  bench::BenchReport report("delta_loss_convergence");
  bench::ScopedMs timer;
  const auto batch = data::take(bench::dataset().test(), 0, 16);
  auto tm = bench::trained("simple_cnn");
  tm.model->eval();

  // Aggressive-but-realistic fault model so SDCs are present yet rare:
  // 4-bit integer quantisation keeps the model accurate while single-bit
  // code flips occasionally swing predictions.
  core::CampaignConfig cfg;
  cfg.format_spec = "int6";
  cfg.injections_per_layer = 400;
  cfg.seed = 2024;

  const auto r = core::run_campaign(*tm.model, batch, cfg);
  std::printf("=== dLoss vs mismatch: injections needed for a 20%%-of-mean"
              " 95%% CI ===\n");
  std::printf("(%lld injections/layer observed, format %s)\n\n",
              (long long)cfg.injections_per_layer, cfg.format_spec.c_str());
  std::printf("%-24s %12s %12s %14s %14s\n", "layer", "mean dLoss",
              "SDC rate", "n*(dLoss)", "n*(mismatch)");
  int64_t dloss_finite = 0, mismatch_finite = 0;
  for (const auto& l : r.layers) {
    const Stats ds = stats_of(l.delta_losses);
    const Stats ms = stats_of(l.sdc_flags);
    const double nd = n_star(ds);
    const double nm = n_star(ms);
    if (std::isfinite(nd)) ++dloss_finite;
    if (std::isfinite(nm)) ++mismatch_finite;
    std::printf("%-24s %12.5f %11.2f%% %14.0f %14.0f\n", l.layer.c_str(),
                ds.mean, 100.0 * ms.mean, nd, nm);
    obs::JsonObject jrow;
    jrow.str("name", l.layer)
        .num("mean_delta_loss", ds.mean)
        .num("sdc_rate", ms.mean)
        .num("n_star_dloss", nd)
        .num("n_star_mismatch", nm)
        .num("wall_ms", timer.elapsed_ms());
    report.row(jrow);
  }
  std::printf("\nlayers measurable with dLoss: %lld/%zu;"
              " with mismatch: %lld/%zu\n",
              (long long)dloss_finite, r.layers.size(),
              (long long)mismatch_finite, r.layers.size());
  std::printf("(mismatch carries no signal until SDCs actually occur —\n"
              " dLoss ranks even fully-masking layers, the paper's argument\n"
              " for campaigning with the continuous metric)\n");
  return 0;
}
