// Shared setup for the paper-reproduction bench binaries: one canonical
// dataset + a trained-model cache so every bench sees identical weights,
// plus a machine-readable result sink (BENCH_<name>.json) so CI can assert
// on bench output instead of scraping stdout.
//
// Environment knobs:
//   GE_CACHE_DIR       where trained weights are cached
//                      (default /tmp/goldeneye_model_cache)
//   GE_INJECTIONS      injections per layer for campaign benches
//                      (default 200; the paper uses 1000 — raise it when you
//                      have the patience, results converge well before 200)
//   GE_BENCH_JSON_DIR  directory for BENCH_<name>.json result files
//                      (default "."; set to the empty string to disable)
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"
#include "obs/run_log.hpp"

namespace ge::bench {

inline const data::SyntheticVision& dataset() {
  static data::SyntheticVision data{data::SyntheticVisionConfig{}};
  return data;
}

inline std::string cache_dir() {
  if (const char* env = std::getenv("GE_CACHE_DIR")) return env;
  return "/tmp/goldeneye_model_cache";
}

inline int64_t injections_per_layer() {
  if (const char* env = std::getenv("GE_INJECTIONS")) {
    return std::strtoll(env, nullptr, 10);
  }
  return 100;
}

/// Trained model, cached on disk across bench runs.
inline models::TrainedModel trained(const std::string& name) {
  models::TrainConfig tc;
  tc.epochs = 6;
  std::fprintf(stderr, "[harness] preparing model '%s' ...\n", name.c_str());
  auto tm = models::ensure_trained(name, dataset(), cache_dir(), tc);
  std::fprintf(stderr, "[harness] %s test accuracy: %.4f\n", name.c_str(),
               tm.test_accuracy);
  return tm;
}

/// Wall-clock stopwatch for the printf-style benches: milliseconds since
/// construction.
class ScopedMs {
 public:
  ScopedMs() : t0_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Machine-readable result sink: each row() is one JSON object, and the
/// destructor writes `BENCH_<bench>.json` — {"bench": ..., "rows": [...]} —
/// into GE_BENCH_JSON_DIR (default cwd; empty disables). Human-readable
/// stdout stays the primary output; this file is what CI asserts on.
class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { write(); }

  /// Record one result row; `fields` should carry at least "name" plus the
  /// measurements (wall_ms, samples, accuracy, ... as applicable).
  void row(const obs::JsonObject& fields) { rows_.push_back(fields.render()); }

  static std::string output_dir() {
    if (const char* env = std::getenv("GE_BENCH_JSON_DIR")) return env;
    return ".";
  }

  std::string path() const {
    const std::string dir = output_dir();
    if (dir.empty()) return "";
    return dir + "/BENCH_" + bench_ + ".json";
  }

  void write() {
    const std::string p = path();
    if (p.empty() || written_) return;
    std::ofstream out(p, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "[harness] cannot write %s\n", p.c_str());
      return;
    }
    out << "{\"bench\":\"" << bench_ << "\",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i != 0) out << ",";
      out << "\n" << rows_[i];
    }
    out << "\n]}\n";
    written_ = true;
    std::fprintf(stderr, "[harness] wrote %s (%zu rows)\n", p.c_str(),
                 rows_.size());
  }

 private:
  std::string bench_;
  std::vector<std::string> rows_;
  bool written_ = false;
};

namespace detail {

/// ConsoleReporter tee: prints the usual table and mirrors every run into a
/// BenchReport row (name, wall_ms per iteration, iterations, counters).
class TeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit TeeReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double per_iter_s =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : run.real_accumulated_time;
      obs::JsonObject row;
      row.str("name", run.benchmark_name())
          .num("wall_ms", per_iter_s * 1e3)
          .num("iterations", static_cast<int64_t>(run.iterations));
      if (!run.report_label.empty()) row.str("label", run.report_label);
      for (const auto& [key, counter] : run.counters) {
        row.num(key.c_str(), static_cast<double>(counter.value));
      }
      report_->row(row);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

}  // namespace detail

/// Drop-in replacement for the Initialize/Run/Shutdown tail of a
/// google-benchmark main(): runs the registered benchmarks with the normal
/// console output AND writes BENCH_<bench>.json alongside.
inline int run_benchmarks(int argc, char** argv, const std::string& bench) {
  benchmark::Initialize(&argc, argv);
  BenchReport report(bench);
  detail::TeeReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.write();
  return 0;
}

}  // namespace ge::bench
