// Shared setup for the paper-reproduction bench binaries: one canonical
// dataset + a trained-model cache so every bench sees identical weights.
//
// Environment knobs:
//   GE_CACHE_DIR    where trained weights are cached
//                   (default /tmp/goldeneye_model_cache)
//   GE_INJECTIONS   injections per layer for campaign benches
//                   (default 200; the paper uses 1000 — raise it when you
//                   have the patience, results converge well before 200)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "models/model_factory.hpp"

namespace ge::bench {

inline const data::SyntheticVision& dataset() {
  static data::SyntheticVision data{data::SyntheticVisionConfig{}};
  return data;
}

inline std::string cache_dir() {
  if (const char* env = std::getenv("GE_CACHE_DIR")) return env;
  return "/tmp/goldeneye_model_cache";
}

inline int64_t injections_per_layer() {
  if (const char* env = std::getenv("GE_INJECTIONS")) {
    return std::strtoll(env, nullptr, 10);
  }
  return 100;
}

/// Trained model, cached on disk across bench runs.
inline models::TrainedModel trained(const std::string& name) {
  models::TrainConfig tc;
  tc.epochs = 6;
  std::fprintf(stderr, "[harness] preparing model '%s' ...\n", name.c_str());
  auto tm = models::ensure_trained(name, dataset(), cache_dir(), tc);
  std::fprintf(stderr, "[harness] %s test accuracy: %.4f\n", name.c_str(),
               tm.test_accuracy);
  return tm;
}

}  // namespace ge::bench
