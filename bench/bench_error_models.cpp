// §IV-C / abstract — "fast DNN reliability analysis for different error
// models": the same per-layer campaign under three fault models —
// transient bit flips, stuck-at-0, stuck-at-1 — on value and metadata
// sites.
//
// Expected shape: stuck-at-0 is the mildest on values (it can only clear
// bits, frequently a masked fault on sparse/ReLU-adjacent activations);
// stuck-at-1 and flips are comparable; the ordering motivates modeling
// the error type, not just the error site.
#include <cstdio>

#include "core/campaign.hpp"
#include "harness.hpp"

int main() {
  using namespace ge;
  bench::BenchReport report("error_models");
  const auto batch = data::take(bench::dataset().test(), 0, 16);
  const int64_t n_inj = bench::injections_per_layer();
  auto tm = bench::trained("simple_cnn");
  tm.model->eval();

  std::printf("=== error-model comparison (simple_cnn, %lld inj/layer)"
              " ===\n\n", (long long)n_inj);

  for (const char* spec : {"fp_e5m10", "int8", "bfp_e5m5_b16"}) {
    std::printf("--- format %s ---\n", spec);
    std::printf("%-12s %16s %16s %14s\n", "model", "dLoss(value)",
                "dLoss(meta)", "SDC(value)");
    for (const auto& [em, label] :
         {std::pair{core::ErrorModel::kBitFlip, "flip"},
          std::pair{core::ErrorModel::kStuckAt0, "stuck-at-0"},
          std::pair{core::ErrorModel::kStuckAt1, "stuck-at-1"}}) {
      bench::ScopedMs timer;
      core::CampaignConfig vcfg;
      vcfg.format_spec = spec;
      vcfg.model = em;
      vcfg.injections_per_layer = n_inj;
      vcfg.seed = 777;
      const auto vr = core::run_campaign(*tm.model, batch, vcfg);
      int64_t sdc = 0, inj = 0;
      for (const auto& l : vr.layers) {
        sdc += l.sdc_count;
        inj += l.injections;
      }
      double meta_mean = 0.0;
      core::CampaignConfig mcfg = vcfg;
      mcfg.site = core::InjectionSite::kMetadata;
      const auto mr = core::run_campaign(*tm.model, batch, mcfg);
      if (!mr.layers.empty()) meta_mean = mr.network_mean_delta_loss();
      std::printf("%-12s %16.5f %16.5f %13.1f%%\n", label,
                  vr.network_mean_delta_loss(), meta_mean,
                  100.0 * double(sdc) / double(inj));
      obs::JsonObject jrow;
      jrow.str("name", std::string(spec) + "/" + label)
          .num("delta_loss_value", vr.network_mean_delta_loss())
          .num("delta_loss_metadata", meta_mean)
          .num("sdc_rate", double(sdc) / double(inj))
          .num("samples", batch.images.size(0))
          .num("wall_ms", timer.elapsed_ms());
      report.row(jrow);
    }
    std::printf("\n");
  }
  return 0;
}
