// Fig. 3 — Runtime performance of GoldenEye, using different number
// formats and with error injection (EI) on/off.
//
// Measures batch-32 inference wall time for 14 configurations per model:
// native (uninstrumented FP32), emulated FP32/FP16/bfloat16, FxP(1,3,12),
// INT8, BFP e8m7 b16, AFP e4m3 — each plain, with a random single-bit
// value EI, and (for INT/BFP/AFP) with a metadata EI.
//
// Expected shape (paper): native fastest; FP/FxP/INT emulation close to
// native (tensorised fused path); BFP/AFP several times slower (block /
// metadata-materialising path, the paper's Python-path analogue); EI adds
// negligible overhead because the scalar routine runs once per inference.
#include <benchmark/benchmark.h>

#include <memory>
#include <optional>

#include "core/injector.hpp"
#include "harness.hpp"

namespace {

using namespace ge;

struct Setup {
  std::unique_ptr<nn::Module> model;
  data::Batch batch;
};

Setup& setup(const std::string& model_name) {
  static std::map<std::string, Setup> cache;
  auto it = cache.find(model_name);
  if (it == cache.end()) {
    Setup s;
    s.model = bench::trained(model_name).model;
    s.model->eval();
    s.batch = data::take(bench::dataset().test(), 0, 32);
    it = cache.emplace(model_name, std::move(s)).first;
  }
  return it->second;
}

enum class Ei { kOff, kValue, kMetadata };

void run_inference(benchmark::State& state, const std::string& model_name,
                   const std::string& spec, Ei ei) {
  Setup& s = setup(model_name);
  std::optional<core::Emulator> emu;
  std::optional<core::Injector> inj;
  if (spec != "native") {
    core::EmulatorConfig cfg;
    cfg.format_spec = spec;
    emu.emplace(*s.model, std::move(cfg));
    if (ei != Ei::kOff) {
      inj.emplace(*emu, /*seed=*/1);
    }
  }
  uint64_t trial = 0;
  for (auto _ : state) {
    if (inj) {
      state.PauseTiming();
      core::InjectionSpec ispec;
      ispec.layer_path = emu->sites()[0].path;
      ispec.site = (ei == Ei::kMetadata) ? core::InjectionSite::kMetadata
                                         : core::InjectionSite::kActivationValue;
      inj->arm(ispec);
      state.ResumeTiming();
      ++trial;
    }
    Tensor out = (*s.model)(s.batch.images);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * s.batch.images.size(0));
}

void register_all(const std::string& model_name) {
  struct Config {
    const char* label;
    const char* spec;
    bool has_metadata;
  };
  const Config configs[] = {
      {"native", "native", false},
      {"fp32", "fp_e8m23", false},
      {"fp16", "fp_e5m10", false},
      {"bfloat16", "fp_e8m7", false},
      {"fxp_1_3_12", "fxp_1_3_12", false},
      {"int8", "int8", true},
      {"bfp_e8m7_b16", "bfp_e8m7_b16", true},
      {"afp_e4m3", "afp_e4m3", true},
  };
  for (const auto& c : configs) {
    const std::string base = model_name + "/" + c.label;
    benchmark::RegisterBenchmark(
        base.c_str(),
        [model_name, spec = std::string(c.spec)](benchmark::State& st) {
          run_inference(st, model_name, spec, Ei::kOff);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(8);
    if (std::string(c.spec) == "native") continue;
    benchmark::RegisterBenchmark(
        (base + "+EI").c_str(),
        [model_name, spec = std::string(c.spec)](benchmark::State& st) {
          run_inference(st, model_name, spec, Ei::kValue);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(8);
    if (c.has_metadata) {
      benchmark::RegisterBenchmark(
          (base + "+EI-metadata").c_str(),
          [model_name, spec = std::string(c.spec)](benchmark::State& st) {
            run_inference(st, model_name, spec, Ei::kMetadata);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(8);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all("simple_cnn");
  register_all("tiny_deit");
  return ge::bench::run_benchmarks(argc, argv, "fig3_runtime");
}
