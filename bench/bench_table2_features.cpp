// Table II — Open-source tool comparison (GoldenEye vs PyTorchFI vs
// QPyTorch). The GoldenEye column is asserted against what this build
// actually implements: each claimed feature is exercised live before the
// table prints, so the table cannot drift from the code.
#include <cstdio>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/goldeneye.hpp"
#include "formats/format_registry.hpp"
#include "harness.hpp"
#include "models/model_factory.hpp"

namespace {

bool verify_feature(const std::string& feature) {
  using namespace ge;
  try {
    if (feature == "Floating Point (FP)") {
      return fmt::is_valid_spec("fp_e5m10");
    }
    if (feature == "Fixed Point (FxP)") {
      return fmt::is_valid_spec("fxp_1_3_12");
    }
    if (feature == "Integer Quantization (INT)") {
      return fmt::is_valid_spec("int8");
    }
    if (feature == "Block Floating Point (BFP)") {
      return fmt::is_valid_spec("bfp_e5m5_b16");
    }
    if (feature == "Adaptive Float (AFP)") {
      return fmt::is_valid_spec("afp_e4m3");
    }
    if (feature == "Future number format support") {
      // live demonstration: posit was added through the NumberFormat
      // extension point after the five paper formats
      return fmt::is_valid_spec("posit_8_1");
    }
    // the remaining features need a live model
    data::SyntheticVisionConfig cfg;
    cfg.train_count = 16;
    cfg.test_count = 32;
    static data::SyntheticVision data(cfg);
    static auto model = models::make_model("mlp", cfg, 1);
    model->eval();
    const auto batch = data::take(data.test(), 0, 8);
    core::CampaignConfig cc;
    cc.injections_per_layer = 1;
    if (feature == "Error injections in values") {
      cc.format_spec = "fp_e5m10";
      return !core::run_campaign(*model, batch, cc).layers.empty();
    }
    if (feature == "Error injections in metadata") {
      cc.format_spec = "bfp_e5m5_b16";
      cc.site = core::InjectionSite::kMetadata;
      return !core::run_campaign(*model, batch, cc).layers.empty();
    }
    if (feature == "Error metric: mismatch" ||
        feature == "Error metric: delta-loss") {
      cc.format_spec = "int8";
      const auto r = core::run_campaign(*model, batch, cc);
      return !r.layers.empty() && r.layers[0].injections == 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "feature check '%s' threw: %s\n", feature.c_str(),
                 e.what());
    return false;
  }
  return false;
}

const char* mark(bool b) { return b ? "yes" : "-"; }

}  // namespace

int main() {
  ge::bench::BenchReport report("table2_features");
  ge::bench::ScopedMs timer;
  std::printf("=== Table II: Open-source tool comparison ===\n");
  std::printf("%-36s %-10s %-10s %-10s %-10s\n", "Feature", "GoldenEye",
              "(verified)", "PyTorchFI", "QPyTorch");
  bool all_ok = true;
  for (const auto& f : ge::core::table2_features()) {
    const bool live = verify_feature(f.feature);
    all_ok = all_ok && (live == f.goldeneye);
    std::printf("%-36s %-10s %-10s %-10s %-10s\n", f.feature.c_str(),
                mark(f.goldeneye), mark(live), mark(f.pytorchfi),
                mark(f.qpytorch));
    ge::obs::JsonObject jrow;
    jrow.str("name", f.feature)
        .boolean("claimed", f.goldeneye)
        .boolean("verified", live)
        .num("wall_ms", timer.elapsed_ms());
    report.row(jrow);
  }
  std::printf("\nGoldenEye column live-verified against this build: %s\n",
              all_ok ? "OK" : "MISMATCH");
  return all_ok ? 0 : 1;
}
