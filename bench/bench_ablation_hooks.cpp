// Ablation — cost of the hook-based interception design (DESIGN.md §4).
//
// GoldenEye intercepts layer outputs via forward hooks rather than baking
// quantisation into the layers. This bench isolates that choice: native
// inference, inference with no-op hooks installed (pure interception
// cost), and inference with identity-format emulation (interception +
// FP32 quantisation, which is the emulation engine's floor).
#include <benchmark/benchmark.h>

#include "core/emulator.hpp"
#include "harness.hpp"

namespace {

using namespace ge;

struct Setup {
  std::unique_ptr<nn::Module> model;
  data::Batch batch;
};

Setup& setup() {
  static Setup s = [] {
    Setup out;
    out.model = bench::trained("simple_cnn").model;
    out.model->eval();
    out.batch = data::take(bench::dataset().test(), 0, 32);
    return out;
  }();
  return s;
}

void BM_Native(benchmark::State& state) {
  Setup& s = setup();
  for (auto _ : state) {
    Tensor out = (*s.model)(s.batch.images);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_NoopHooks(benchmark::State& state) {
  Setup& s = setup();
  std::vector<std::pair<nn::Module*, nn::Module::HookHandle>> hooks;
  for (auto& [path, mod] : s.model->named_modules()) {
    if (mod->kind() == "Conv2d" || mod->kind() == "Linear") {
      hooks.emplace_back(mod,
                         mod->add_forward_hook([](nn::Module&, Tensor&) {}));
    }
  }
  for (auto _ : state) {
    Tensor out = (*s.model)(s.batch.images);
    benchmark::DoNotOptimize(out.data());
  }
  for (auto& [mod, h] : hooks) mod->remove_hook(h);
}

void BM_IdentityEmulation(benchmark::State& state) {
  Setup& s = setup();
  core::EmulatorConfig cfg;
  cfg.format_spec = "fp_e8m23";  // the fabric's own format: pure overhead
  core::Emulator emu(*s.model, cfg);
  for (auto _ : state) {
    Tensor out = (*s.model)(s.batch.images);
    benchmark::DoNotOptimize(out.data());
  }
}

BENCHMARK(BM_Native)->Unit(benchmark::kMillisecond)->Iterations(10);
BENCHMARK(BM_NoopHooks)->Unit(benchmark::kMillisecond)->Iterations(10);
BENCHMARK(BM_IdentityEmulation)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(10);

}  // namespace

int main(int argc, char** argv) {
  return ge::bench::run_benchmarks(argc, argv, "ablation_hooks");
}
