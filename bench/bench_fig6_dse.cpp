// Fig. 5/6 — Design-space exploration: the recursive binary-tree search
// over (bitwidth, radix), per model and format family.
//
// Prints each visited node in visit order (Fig. 6's x-axis), its measured
// accuracy and pass/fail against the 1% threshold, plus the selected
// configuration. Expected shape (paper): the heuristic terminates after
// at most 16 nodes, more than half the visited nodes sit above the
// threshold, and the chosen design point differs between the CNN and the
// transformer.
#include <cstdio>

#include "core/dse.hpp"
#include "harness.hpp"

int main() {
  using namespace ge;
  const auto batch = data::take(bench::dataset().test(), 0, 256);

  bench::BenchReport report("fig6_dse");

  std::printf("=== Fig. 5/6: binary-tree DSE for number format selection ===\n");
  std::printf("(threshold: accuracy >= baseline - 1%%)\n\n");

  for (const char* model_name : {"tiny_resnet", "tiny_deit"}) {
    auto tm = bench::trained(model_name);
    tm.model->eval();
    std::printf("--- %s ---\n", model_name);
    for (const char* family : {"fp", "fxp", "int", "bfp", "afp"}) {
      core::DseConfig cfg;
      cfg.family = family;
      cfg.accuracy_drop_threshold = 0.01f;
      bench::ScopedMs timer;
      const core::DseResult r = core::run_dse(*tm.model, batch, cfg);
      std::printf("family %-4s baseline=%.4f nodes=%zu passing=%lld\n",
                  family, r.baseline_accuracy, r.nodes.size(),
                  (long long)r.passing_nodes());
      for (const auto& n : r.nodes) {
        std::printf("  node %2d [%8s] %-16s w=%2d acc=%.4f %s\n", n.id,
                    n.phase.c_str(), n.spec.c_str(), n.bitwidth, n.accuracy,
                    n.pass ? "PASS" : "fail");
      }
      if (!r.best_spec.empty()) {
        std::printf("  => selected %s (w=%d, acc=%.4f)\n",
                    r.best_spec.c_str(), r.best_bitwidth, r.best_accuracy);
      } else {
        std::printf("  => no configuration met the threshold\n");
      }
      obs::JsonObject jrow;
      jrow.str("name", std::string(model_name) + "/" + family)
          .num("baseline_accuracy", static_cast<double>(r.baseline_accuracy))
          .num("nodes", static_cast<int64_t>(r.nodes.size()))
          .num("passing", r.passing_nodes())
          .str("best_spec", r.best_spec)
          .num("accuracy", static_cast<double>(r.best_accuracy))
          .num("samples", batch.images.size(0))
          .num("wall_ms", timer.elapsed_ms());
      report.row(jrow);
    }
    std::printf("\n");
  }
  return 0;
}
