// Table I — Dynamic range of data types.
//
// Regenerates the paper's Table I (abs max, abs min, 20·log10(max/min) dB)
// from this library's format implementations. Expected to match the paper
// numerically (see EXPERIMENTS.md; the paper's INT16 dB entry contains a
// typo — 98.31 printed where 20·log10(32767) = 90.31).
#include <cstdio>

#include "core/goldeneye.hpp"
#include "harness.hpp"

int main() {
  ge::bench::BenchReport report("table1_dynamic_range");
  ge::bench::ScopedMs timer;
  std::printf("=== Table I: Dynamic Range of Data Types ===\n");
  std::printf("%-22s %14s %14s %12s\n", "Data Type", "Abs Max", "Abs Min",
              "Range (dB)");
  for (const auto& row : ge::core::table1_rows()) {
    std::printf("%-22s %14.4g %14.4g %12.2f\n", row.label.c_str(),
                row.abs_max, row.abs_min, row.range_db);
    ge::obs::JsonObject jrow;
    jrow.str("name", row.label)
        .num("abs_max", row.abs_max)
        .num("abs_min", row.abs_min)
        .num("range_db", row.range_db)
        .num("wall_ms", timer.elapsed_ms());
    report.row(jrow);
  }
  std::printf("\n(INT rows are in integer code units; min nonzero code = 1."
              "\n AFP rows sit at the standard bias; the range is movable.)\n");
  return 0;
}
