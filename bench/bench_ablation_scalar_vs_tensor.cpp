// Ablation — tensorised vs scalar conversion paths (paper §III-B).
//
// Methods 1/2 (tensor) are the fast bulk path; methods 3/4 (scalar
// bitstrings) exist for fine-grained injection. This bench quantifies the
// gap that justifies the two-path API: converting a 64k-element tensor
// through the bulk kernel vs element-by-element through encode/decode.
#include <benchmark/benchmark.h>

#include "formats/format_registry.hpp"
#include "harness.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace ge;

Tensor& payload() {
  static Tensor t = Rng(7).normal_tensor({64 * 1024}, 0.0f, 4.0f);
  return t;
}

void BM_TensorPath(benchmark::State& state, const std::string& spec) {
  auto f = fmt::make_format(spec);
  for (auto _ : state) {
    Tensor q = f->real_to_format_tensor(payload());
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() * payload().numel());
}

void BM_ScalarPath(benchmark::State& state, const std::string& spec) {
  auto f = fmt::make_format(spec);
  // metadata-bearing formats need a tensor context for *_at
  (void)f->real_to_format_tensor(payload());
  const Tensor& t = payload();
  for (auto _ : state) {
    float acc = 0.0f;
    for (int64_t i = 0; i < t.numel(); ++i) {
      acc += f->format_to_real_at(f->real_to_format_at(t[i], i), i);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * payload().numel());
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* spec :
       {"fp_e5m10", "fxp_1_3_12", "int8", "bfp_e5m5_b16", "afp_e4m3"}) {
    benchmark::RegisterBenchmark(
        (std::string("tensor_path/") + spec).c_str(),
        [spec = std::string(spec)](benchmark::State& st) {
          BM_TensorPath(st, spec);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
    benchmark::RegisterBenchmark(
        (std::string("scalar_path/") + spec).c_str(),
        [spec = std::string(spec)](benchmark::State& st) {
          BM_ScalarPath(st, spec);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  return ge::bench::run_benchmarks(argc, argv, "ablation_scalar_vs_tensor");
}
