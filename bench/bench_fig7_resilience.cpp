// Fig. 7 — Per-layer ΔLoss under single-bit injections for BFP (e5m5) and
// AFP (e5m2), at data-value and metadata sites, for a residual CNN
// (ResNet50 stand-in) and a transformer (DeiT-base stand-in).
//
// The paper performs 1000 injections per layer per site; default here is
// GE_INJECTIONS (200), which is converged for these models (ΔLoss CI is
// printed so you can check).
//
// Expected shape (paper): metadata injections dominate value injections,
// most extremely for BFP (a shared-exponent flip is a whole-block
// multi-bit flip); AFP is layer-wise more resilient than BFP except near
// the last layer, whose wider value distribution stresses AFP's range.
#include <cstdio>

#include "core/campaign.hpp"
#include "harness.hpp"

int main() {
  using namespace ge;
  const auto batch = data::take(bench::dataset().test(), 0, 16);
  const int64_t n_inj = bench::injections_per_layer();

  bench::BenchReport report("fig7_resilience");

  std::printf("=== Fig. 7: per-layer dLoss, value vs metadata injections ===\n");
  std::printf("(%lld injections/layer/site)\n\n", (long long)n_inj);

  for (const char* model_name : {"tiny_resnet", "tiny_deit"}) {
    auto tm = bench::trained(model_name);
    tm.model->eval();
    for (const char* spec : {"bfp_e5m5_b16", "afp_e5m2"}) {
      core::CampaignConfig value_cfg;
      value_cfg.format_spec = spec;
      value_cfg.injections_per_layer = n_inj;
      value_cfg.seed = 1234;
      core::CampaignConfig meta_cfg = value_cfg;
      meta_cfg.site = core::InjectionSite::kMetadata;

      bench::ScopedMs timer;
      const auto value_r = core::run_campaign(*tm.model, batch, value_cfg);
      const auto meta_r = core::run_campaign(*tm.model, batch, meta_cfg);

      std::printf("--- %s / %s (emulated clean accuracy %.4f) ---\n",
                  model_name, spec, value_r.golden_accuracy);
      std::printf("%-28s %12s %12s %10s %12s %12s\n", "layer", "dLoss(val)",
                  "+-CI", "SDC(val)", "dLoss(meta)", "SDC(meta)");
      for (size_t i = 0; i < value_r.layers.size(); ++i) {
        const auto& v = value_r.layers[i];
        const auto& m = meta_r.layers[i];
        std::printf("%-28s %12.5f %12.5f %9.1f%% %12.5f %11.1f%%\n",
                    v.layer.c_str(), v.mean_delta_loss, v.ci95_delta_loss,
                    100.0 * double(v.sdc_count) / double(v.injections),
                    m.mean_delta_loss,
                    100.0 * double(m.sdc_count) / double(m.injections));
      }
      std::printf("network mean: value=%.5f metadata=%.5f (x%.1f)\n\n",
                  value_r.network_mean_delta_loss(),
                  meta_r.network_mean_delta_loss(),
                  meta_r.network_mean_delta_loss() /
                      std::max(1e-12, value_r.network_mean_delta_loss()));
      obs::JsonObject jrow;
      jrow.str("name", std::string(model_name) + "/" + spec)
          .num("mean_delta_loss_value", value_r.network_mean_delta_loss())
          .num("mean_delta_loss_metadata", meta_r.network_mean_delta_loss())
          .num("samples", batch.images.size(0))
          .num("injections_per_layer", n_inj)
          .num("wall_ms", timer.elapsed_ms());
      report.row(jrow);
    }
  }
  return 0;
}
