// Fig. 9 — Accuracy vs resilience (mean ΔLoss across layers, value +
// metadata) vs bitwidth, for BFP and AFP design points on the residual
// CNN — the paper's §V-A accelerator-tuning view.
//
// Expected shape (paper): low-precision / high-accuracy / low-ΔLoss
// points exist in the "top-left" (e.g. AFP e4m4); designers pick along
// the frontier.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/emulator.hpp"
#include "harness.hpp"

int main() {
  using namespace ge;
  const auto acc_batch = data::take(bench::dataset().test(), 0, 256);
  const auto inj_batch = data::take(bench::dataset().test(), 0, 16);
  const int64_t n_inj = std::max<int64_t>(30, bench::injections_per_layer() / 4);

  bench::BenchReport report("fig9_tradeoff");
  auto tm = bench::trained("tiny_resnet");
  tm.model->eval();
  const float baseline = core::emulated_accuracy(
      *tm.model, acc_batch.images, acc_batch.labels, "native");

  struct Point {
    const char* spec;
    int width;
  };
  const Point points[] = {
      {"bfp_e5m15_b16", 16}, {"bfp_e5m7_b16", 8}, {"bfp_e5m5_b16", 6},
      {"bfp_e5m3_b16", 4},   {"afp_e5m10", 16},   {"afp_e4m4", 9},
      {"afp_e4m3", 8},       {"afp_e5m2", 8},     {"afp_e3m2", 6},
  };

  std::printf("=== Fig. 9: accuracy / resilience / bitwidth tuning"
              " (tiny_resnet, baseline %.4f) ===\n", baseline);
  std::printf("(resilience = mean dLoss across layers, value+metadata"
              " sites, %lld injections/layer/site)\n\n", (long long)n_inj);
  std::printf("%-16s %6s %10s %14s %14s %14s\n", "format", "width",
              "accuracy", "dLoss(value)", "dLoss(meta)", "dLoss(avg)");

  for (const auto& p : points) {
    bench::ScopedMs timer;
    const float acc = core::emulated_accuracy(*tm.model, acc_batch.images,
                                              acc_batch.labels, p.spec);
    core::CampaignConfig vcfg;
    vcfg.format_spec = p.spec;
    vcfg.injections_per_layer = n_inj;
    vcfg.seed = 99;
    core::CampaignConfig mcfg = vcfg;
    mcfg.site = core::InjectionSite::kMetadata;
    const double dv =
        core::run_campaign(*tm.model, inj_batch, vcfg).network_mean_delta_loss();
    const double dm =
        core::run_campaign(*tm.model, inj_batch, mcfg).network_mean_delta_loss();
    std::printf("%-16s %6d %10.4f %14.5f %14.5f %14.5f\n", p.spec, p.width,
                acc, dv, dm, (dv + dm) / 2.0);
    obs::JsonObject jrow;
    jrow.str("name", p.spec)
        .num("width", static_cast<int64_t>(p.width))
        .num("accuracy", static_cast<double>(acc))
        .num("delta_loss_value", dv)
        .num("delta_loss_metadata", dm)
        .num("samples", acc_batch.images.size(0))
        .num("wall_ms", timer.elapsed_ms());
    report.row(jrow);
  }
  std::printf("\n(top-left points = low width, high accuracy, low dLoss)\n");
  return 0;
}
