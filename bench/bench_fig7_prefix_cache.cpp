// Fig. 7 companion — golden-prefix cache ablation (DESIGN.md §10).
//
// Runs the same per-layer injection campaign with the suffix-replay cache
// off (every trial is a full forward) and on (each trial replays only from
// its injection site), and reports trial throughput for both. The cache is
// a pure speed knob, so the campaign digests must match bitwise — this
// binary asserts that and exits non-zero on any divergence.
//
// Expected shape: speedup grows with network depth because the average
// trial skips half the layers; deeper/more uniform models (tiny_deit's
// transformer blocks) sit near the ~2x ideal, front-heavy CNNs lower.
#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "harness.hpp"

int main() {
  using namespace ge;
  const auto batch = data::take(bench::dataset().test(), 0, 16);
  const int64_t n_inj = bench::injections_per_layer();

  bench::BenchReport report("fig7_prefix_cache");

  std::printf("=== Fig. 7 ablation: golden-prefix cache on vs off ===\n");
  std::printf("(%lld injections/layer, value site, fp_e5m10)\n\n",
              (long long)n_inj);
  std::printf("%-14s %10s %12s %12s %9s %8s\n", "model", "trials",
              "off(ms)", "on(ms)", "speedup", "digest");

  bool all_equal = true;
  for (const char* model_name : {"tiny_resnet", "tiny_deit"}) {
    auto tm = bench::trained(model_name);
    tm.model->eval();

    core::CampaignConfig cfg;
    cfg.format_spec = "fp_e5m10";
    cfg.injections_per_layer = n_inj;
    cfg.seed = 1234;

    cfg.use_prefix_cache = false;
    bench::ScopedMs t_off;
    const auto r_off = core::run_campaign(*tm.model, batch, cfg);
    const double ms_off = t_off.elapsed_ms();

    cfg.use_prefix_cache = true;
    bench::ScopedMs t_on;
    const auto r_on = core::run_campaign(*tm.model, batch, cfg);
    const double ms_on = t_on.elapsed_ms();

    const uint64_t d_off = core::campaign_digest(r_off);
    const uint64_t d_on = core::campaign_digest(r_on);
    const bool equal = d_off == d_on;
    all_equal = all_equal && equal;

    const int64_t trials =
        n_inj * static_cast<int64_t>(r_on.layers.size());
    const double speedup = ms_on > 0.0 ? ms_off / ms_on : 0.0;
    std::printf("%-14s %10lld %12.1f %12.1f %8.2fx %8s\n", model_name,
                (long long)trials, ms_off, ms_on, speedup,
                equal ? "equal" : "DIFFER");

    obs::JsonObject jrow;
    jrow.str("name", model_name)
        .num("trials", trials)
        .num("injections_per_layer", n_inj)
        .num("wall_ms_cache_off", ms_off)
        .num("wall_ms_cache_on", ms_on)
        .num("trials_per_sec_cache_off",
             ms_off > 0.0 ? 1000.0 * double(trials) / ms_off : 0.0)
        .num("trials_per_sec_cache_on",
             ms_on > 0.0 ? 1000.0 * double(trials) / ms_on : 0.0)
        .num("speedup", speedup)
        .boolean("digest_equal", equal);
    report.row(jrow);
  }

  if (!all_equal) {
    std::fprintf(stderr,
                 "FAIL: cache-on and cache-off campaign digests differ\n");
    return 1;
  }
  std::printf("\nall digests equal: suffix replay is bitwise exact\n");
  return 0;
}
