// Fig. 4 — Functional simulation for accuracy: model accuracy as a
// function of number format and bitwidth (32/16/12/8/6/4), for a residual
// CNN (ResNet18 stand-in) and a vision transformer (DeiT-tiny stand-in).
//
// Expected shape (paper): both models hold accuracy at wide formats; the
// transformer tolerates lower FP bitwidths than the CNN; AFP holds
// accuracy at widths where plain FP collapses (movable range); INT stays
// usable to 8 bits then collapses. No fine-tuning — accuracy changes come
// purely from the number format, as in the paper.
#include <cstdio>

#include "core/dse.hpp"
#include "core/emulator.hpp"
#include "harness.hpp"

int main() {
  using namespace ge;
  const auto batch = data::take(bench::dataset().test(), 0, 256);
  bench::BenchReport report("fig4_accuracy");
  const int64_t n_samples = batch.images.size(0);

  std::printf("=== Fig. 4: accuracy vs number format and bitwidth ===\n");
  std::printf("(%lld held-out samples; no fine-tuning)\n\n",
              (long long)batch.images.size(0));

  for (const char* model_name : {"tiny_resnet", "tiny_deit"}) {
    auto tm = bench::trained(model_name);
    tm.model->eval();
    const float native = core::emulated_accuracy(
        *tm.model, batch.images, batch.labels, "native");
    std::printf("--- %s (native FP32 accuracy: %.4f) ---\n", model_name,
                native);
    std::printf("%-8s", "width");
    for (const char* fam : {"fp", "fxp", "int", "bfp", "afp"}) {
      std::printf(" %12s", fam);
    }
    std::printf("\n");

    // walk the five family ladders in lock-step by width
    for (int width : {32, 16, 12, 8, 6, 4}) {
      std::printf("%-8d", width);
      for (const char* fam : {"fp", "fxp", "int", "bfp", "afp"}) {
        std::string spec;
        for (const auto& [w, s] : core::bitwidth_ladder(fam)) {
          if (w == width) spec = s;
        }
        if (spec.empty()) {
          std::printf(" %12s", "-");
          continue;
        }
        bench::ScopedMs timer;
        const float acc = core::emulated_accuracy(*tm.model, batch.images,
                                                  batch.labels, spec);
        std::printf(" %12.4f", acc);
        obs::JsonObject jrow;
        jrow.str("name", std::string(model_name) + "/" + spec)
            .num("accuracy", static_cast<double>(acc))
            .num("samples", n_samples)
            .num("wall_ms", timer.elapsed_ms());
        report.row(jrow);
      }
      std::printf("\n");
    }

    // the paper's e2m5 observation: FP vs AFP at the same tiny width
    const float fp_low = core::emulated_accuracy(*tm.model, batch.images,
                                                 batch.labels, "fp_e2m5");
    const float afp_low = core::emulated_accuracy(*tm.model, batch.images,
                                                  batch.labels, "afp_e2m5");
    std::printf("e2m5:    fp=%.4f  afp=%.4f   (AFP's movable range rescues"
                " the CNN, Fig. 4 inset)\n\n", fp_low, afp_low);
  }
  return 0;
}
