// Error-model zoo throughput (§IV-C): campaign trials/s under the classic
// single-bit flip versus the two headline zoo models — uniform BER over the
// whole activation tensor and channel-correlated faults — on the two
// "real" topologies (tiny_resnet, tiny_deit).
//
// Expected shape: flip and channel trials cost about one forward pass each
// (channel touches more elements but injection is a rounding error next to
// the forward), while ber_uniform pays a serial per-bit Bernoulli sweep
// over the tensor — its trials/s floor is what motivates the documented
// guidance to keep --ber campaigns on small layers or accept the cost.
// The JSON rows feed the CI perf gate (bench/baselines/inject_models.json).
#include <cstdio>

#include "core/campaign.hpp"
#include "harness.hpp"

int main() {
  using namespace ge;
  bench::BenchReport report("inject_models");
  const auto batch = data::take(bench::dataset().test(), 0, 16);
  const int64_t n_inj = bench::injections_per_layer();

  struct Case {
    const char* label;
    core::ErrorModel model;
    double ber;
  };
  const Case cases[] = {
      {"flip", core::ErrorModel::kBitFlip, 0.0},
      {"ber_1e-3", core::ErrorModel::kBerUniform, 1e-3},
      {"channel", core::ErrorModel::kChannel, 0.0},
  };

  std::printf("=== error-model injection throughput (%lld inj/layer) ===\n\n",
              (long long)n_inj);

  for (const char* model_name : {"tiny_resnet", "tiny_deit"}) {
    auto tm = bench::trained(model_name);
    tm.model->eval();
    std::printf("--- %s ---\n", model_name);
    std::printf("%-10s %10s %12s %12s %10s\n", "model", "trials", "wall_ms",
                "trials/s", "SDC");
    for (const Case& c : cases) {
      core::CampaignConfig cfg;
      cfg.format_spec = "fp_e5m10";
      cfg.model = c.model;
      cfg.ber = c.ber;
      cfg.injections_per_layer = n_inj;
      cfg.seed = 777;
      bench::ScopedMs timer;
      const auto r = core::run_campaign(*tm.model, batch, cfg);
      const double wall_ms = timer.elapsed_ms();
      int64_t trials = 0, sdc = 0;
      for (const auto& l : r.layers) {
        trials += l.injections;
        sdc += l.sdc_count;
      }
      const double tps = trials / (wall_ms / 1000.0);
      std::printf("%-10s %10lld %12.1f %12.1f %9.1f%%\n", c.label,
                  (long long)trials, wall_ms, tps,
                  100.0 * double(sdc) / double(trials));
      obs::JsonObject jrow;
      jrow.str("name", std::string(model_name) + "/" + c.label)
          .num("trials", double(trials))
          .num("wall_ms", wall_ms)
          .num("trials_per_sec", tps)
          .num("sdc_rate", double(sdc) / double(trials))
          .num("delta_loss", r.network_mean_delta_loss());
      report.row(jrow);
    }
    std::printf("\n");
  }
  return 0;
}
